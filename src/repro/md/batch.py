"""Many-system batched stepping: one fused force pass serving K systems.

The paper's headline workload is *small* systems run for *long*
timescales, replicated across many independent jobs (the drug-discovery
ensemble of ``examples/drug_screening_throughput.py``).  PR 6 made one
system fast, but at a few thousand particles the per-step Python and
numpy dispatch overhead of a solo :class:`~repro.md.engine.ReferenceEngine`
still rivals the kernel itself — and that overhead repeats K times for
K replicas.  :class:`BatchedEngine` packs K independent systems into
one concatenated SoA state so each step costs **one** fused force-kernel
call, one segmented scatter, and one vectorized integrator pass for the
whole batch, amortizing the fixed costs K ways (mirroring the
replica-throughput framing of the on-FPGA MD ensembles in PAPERS.md).

Packing layout (see DESIGN.md §11)
----------------------------------
* **Particle (row) space** — per-system arrays are concatenated in
  segment order: rows ``bases[k]:bases[k+1]`` belong to system ``k``.
  Positions, velocities, forces, masses, species, per-row box edges and
  per-row cell-grid strides all live in this space, so velocity-Verlet,
  wrapping and the rebuild criterion run as single elementwise /
  ``reduceat`` passes over the whole batch.
* **Slot space** — each segment's bucket-sorted particle order
  (``CellState.clist.order``), offset by its row base, concatenated into
  one global ``order`` array.  Coordinate columns are gathered into
  ``n_rows + 2`` SoA slots; the two trailing *ghost* slots are pinned
  ``4 * cell_edge`` apart so any pair referencing them fails the exact
  ``r2 < cutoff2`` test.
* **Pair-stream space** — each segment's flat ``(a, b, srow)`` stream
  (the solo engine's :class:`~repro.md.reference._FlatArtifacts`,
  re-offset into global slot/shift-row space) occupies a region with
  ~25% capacity slack; rows past the live length are *pad pairs*
  pointing at the ghost slots.  A skin rebuild that still fits splices
  in place; growth beyond capacity triggers one stream re-pack.
  ``seg_lo/seg_hi`` delimit the live ranges for the backend's
  ``lj_flat_seg`` kernel.

Bitwise contract
----------------
Each packed system's trajectory (positions, velocities, forces) is
**bitwise identical** to running it alone in a
``ReferenceEngine(reuse_state=True, force_impl=solo_oracle_impl(impl))``
on the same backend, including across :meth:`BatchedEngine.add` /
:meth:`BatchedEngine.remove` swaps of *other* segments:

* every integrator / wrap / thermostat operation is elementwise (or a
  same-shape contiguous ``np.sum``) over the same operand values;
* a particle's force-accumulation subsequence is exactly its solo pair
  stream (its slot index never appears in another segment's pairs, and
  pad pairs are rejected by the cutoff or skipped by ``seg_lo/seg_hi``);
* rebuild decisions restate :meth:`CellState.needs_rebuild` with exact
  reductions (``max``, ``any``), so each segment rebuilds on exactly
  the steps its solo run would.

Per-segment *energies* from the pure-numpy kernel are reduced with a
segmented bincount instead of one ``np.sum``, so potentials agree with
solo to float64 round-off rather than bitwise (trajectories depend only
on forces).  The contract requires each segment to stay *padded-viable*
(:func:`~repro.md.reference._padded_viable`) — a solo run on a sparse
box would take the chunked fresh path with a different stream; the
batched engine raises instead of silently diverging.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.faults.health import (
    GuardConfig,
    PoisonRecord,
    REASON_DISPLACEMENT,
    REASON_DRIFT,
    REASON_ENERGY,
    REASON_FORCE,
    check_system_finite,
)
from repro.md.cells import CellGrid
from repro.md.cellstate import CellState, engine_pack_fn
from repro.md.integrator import VelocityVerlet
from repro.md.pairplan import CellPairPlan, plan_for_grid
from repro.md.backends import ForceBackend, resolve_backend
from repro.md.reference import _cutoff_shift, _padded_viable, _FlatArtifacts
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError
from repro.util.units import KCAL_MOL_TO_INTERNAL

#: Capacity slack of a segment's pair-stream region: a rebuild whose
#: band list grew less than this factor splices in place instead of
#: re-packing the whole stream.
PAIR_SLACK = 1.25

#: Floor on a segment's pair-stream capacity (tiny systems still get a
#: few spare rows so the first skin fluctuation does not force a
#: re-pack).
_MIN_CAP = 16


def solo_oracle_impl(force_impl: Optional[str] = None) -> str:
    """The solo ``force_impl`` whose trajectory a batched run matches bitwise.

    Identity for every backend except ``"numpy"``: batched stepping has
    no classic per-offset shape, so ``force_impl="numpy"`` runs the
    shared pure-numpy segmented kernel — whose solo equivalent is the
    ``"soa"`` flat kernel, not the per-offset reference reuse path.
    """
    name = resolve_backend(force_impl).name
    return "soa" if name == "numpy" else name


class _Segment:
    """One packed system: its grid machinery plus packing offsets."""

    __slots__ = (
        "handle", "grid", "plan", "state", "thermostat", "aux", "n",
        "pending", "primed", "art", "live", "cap", "lo", "stab_base",
        "base", "last_potential", "steps_base", "start_step", "e_ref",
    )

    def __init__(self, handle, grid, plan, state, thermostat, aux, pending):
        self.handle = handle
        self.grid = grid
        self.plan = plan
        self.state = state
        self.thermostat = thermostat
        self.aux = aux
        self.n = pending.n
        self.pending: Optional[ParticleSystem] = pending
        self.primed = False
        self.art: Optional[_FlatArtifacts] = None
        self.live = 0       # live pairs in the stream region
        self.cap = 0        # stream region capacity
        self.lo = 0         # stream region offset
        self.stab_base = 0  # shift-table row offset of this segment's plan
        self.base = 0       # particle-row base
        self.last_potential = 0.0
        self.steps_base = 0     # steps carried over a checkpoint restore
        self.start_step = 0     # engine step_count at priming
        self.e_ref = None       # energy-drift watchdog reference (kcal/mol)


class BatchedEngine:
    """K independent LJ systems stepped by one fused force pass.

    Systems may have different particle counts and grid dims, but must
    share the force-field family: one LJ table, one ``cell_edge``
    (= cutoff), one timestep and one ``shift`` setting — the fused
    kernel runs with a single ``cutoff2``/``shift_e``.

    Parameters
    ----------
    dt_fs / shift:
        As :class:`~repro.md.engine.ReferenceEngine`.
    force_impl:
        Force backend; every registered backend (including ``numpy``)
        provides the segmented kernel.  See :func:`solo_oracle_impl`
        for the solo backend each trajectory matches bitwise.
    reuse_skin:
        Skin margin for the per-segment persistent
        :class:`~repro.md.cellstate.CellState`; defaults to
        ``0.15 * cell_edge`` exactly like the solo engine.
    guard:
        Optional :class:`~repro.faults.health.GuardConfig` enabling the
        per-segment numerical health guards (DESIGN.md §12).  Guards
        only *read* arrays the step already produces, so a guarded
        healthy run is bitwise identical to an unguarded one; a tripped
        segment is quarantined through the :meth:`remove` swap-out at
        the end of its step and recorded in :attr:`poison_log`, and the
        survivors continue bitwise as if it had never been admitted.
    """

    def __init__(
        self,
        dt_fs: float = 2.0,
        shift: bool = False,
        force_impl: Optional[str] = None,
        reuse_skin: Optional[float] = None,
        guard: Optional[GuardConfig] = None,
    ):
        self.dt_fs = float(dt_fs)
        self.shift = bool(shift)
        self.force_impl = force_impl
        self.reuse_skin = reuse_skin
        self.guard = guard
        #: Quarantine history: one :class:`PoisonRecord` per guard trip,
        #: in detection order.  Schedulers drain the tail after each
        #: ``step`` call to learn which handles were swapped out.
        self.poison_log: List[PoisonRecord] = []
        self._step_tripped: Dict[int, tuple] = {}
        backend = resolve_backend(force_impl)
        if backend.lj_flat_seg is None:
            raise ValidationError(
                f"backend {backend.name!r} has no segmented lj_flat_seg kernel"
            )
        self._backend: ForceBackend = backend
        self.backend_name = backend.name
        self._integrator = VelocityVerlet(self.dt_fs)
        self.step_count = 0
        self._segments: List[_Segment] = []
        self._by_handle: Dict[int, _Segment] = {}
        self._next_handle = 0
        self._pack_dirty = False
        self._lj = None
        self._cell_edge: Optional[float] = None
        self._cutoff2 = 0.0
        self._shift_e = 0.0
        self._skin = 0.0
        self._n = 0
        self._energies = np.zeros(0, dtype=np.float64)

    # -- admission and removal ---------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def n_particles(self) -> int:
        """Total particles across all segments (including pending adds)."""
        return sum(s.n for s in self._segments)

    def handles(self) -> List[int]:
        return [s.handle for s in self._segments]

    def add(
        self,
        system: ParticleSystem,
        grid: CellGrid,
        thermostat=None,
        aux: Optional[dict] = None,
        handle: Optional[int] = None,
    ) -> int:
        """Admit a system; returns its stable integer handle.

        The system state is *copied* at admission (the engine owns its
        packed arrays; the caller's object is never mutated).  The
        segment is packed and primed lazily on the next :meth:`step` —
        adding mid-run never perturbs the other segments' trajectories.

        With a :attr:`guard` whose ``check_input`` is set, non-finite
        positions or velocities raise
        :class:`~repro.util.errors.JobPoisonedError` here — a corrupt
        upload is rejected before it ever touches the shared arrays.
        """
        if system.n == 0:
            raise ValidationError("cannot batch an empty system")
        if self.guard is not None and self.guard.check_input:
            check_system_finite(
                system.positions, system.velocities,
                handle=self._next_handle if handle is None else handle,
            )
        if not np.allclose(grid.box, system.box):
            raise ValidationError("grid box must match system box")
        edge = float(grid.cell_edge)
        if self._cell_edge is None:
            self._cell_edge = edge
            self._cutoff2 = edge * edge
            self._lj = system.lj_table
            self._shift_e = _cutoff_shift(self._lj, edge, self.shift)
            skin = self.reuse_skin
            if skin is None:
                skin = 0.15 * edge
            self._skin = float(skin)
        else:
            if edge != self._cell_edge:
                raise ValidationError(
                    f"batch cutoff is {self._cell_edge}; got grid edge {edge}"
                )
            lj = system.lj_table
            if lj is not self._lj and not (
                lj.n_species == self._lj.n_species
                and np.array_equal(lj.c6, self._lj.c6)
                and np.array_equal(lj.c12, self._lj.c12)
                and np.array_equal(lj.masses, self._lj.masses)
            ):
                raise ValidationError(
                    "all batched systems must share one LJ table"
                )
        if handle is None:
            handle = self._next_handle
        elif handle in self._by_handle:
            raise ValidationError(f"segment handle {handle} already in use")
        self._next_handle = max(self._next_handle, handle) + 1
        plan = plan_for_grid(grid)
        state = CellState(
            grid, plan, self._skin, engine_pack_fn(grid, plan, self._skin)
        )
        seg = _Segment(
            handle, grid, plan, state, thermostat,
            dict(aux) if aux else {}, system.copy(),
        )
        self._segments.append(seg)
        self._by_handle[handle] = seg
        self._pack_dirty = True
        return seg.handle

    def extract(self, handle: int) -> ParticleSystem:
        """Copy of a segment's current dynamic state (engine unchanged)."""
        seg = self._seg(handle)
        if seg.pending is not None:
            return seg.pending.copy()
        lo, hi = seg.base, seg.base + seg.n
        return ParticleSystem(
            positions=self._pos[lo:hi].copy(),
            velocities=self._vel[lo:hi].copy(),
            species=self._spc[lo:hi].copy(),
            lj_table=self._lj,
            box=seg.grid.box,
            forces=self._frc[lo:hi].copy(),
        )

    def remove(self, handle: int) -> ParticleSystem:
        """Swap a segment out; returns its final state.

        The remaining segments' packed values are copied verbatim and
        their pair streams re-offset, so their trajectories continue
        bitwise as if nothing happened.
        """
        seg = self._seg(handle)
        self._sync_segment_stats()
        out = self.extract(handle)
        self._segments.remove(seg)
        del self._by_handle[handle]
        self._pack_dirty = True
        return out

    def _seg(self, handle: int) -> _Segment:
        try:
            return self._by_handle[handle]
        except KeyError:
            raise ValidationError(f"no batched segment with handle {handle}")

    # -- bookkeeping accessors ---------------------------------------------

    def potentials(self) -> Dict[int, float]:
        """Last per-segment potential energies (kcal/mol)."""
        self._sync_segment_stats()
        return {s.handle: s.last_potential for s in self._segments}

    def segment_steps(self, handle: int) -> int:
        """Steps this segment has advanced (across checkpoint restores)."""
        seg = self._seg(handle)
        if not seg.primed:
            return seg.steps_base
        return seg.steps_base + (self.step_count - seg.start_step)

    def state_builds(self, handle: int) -> int:
        return self._seg(handle).state.builds

    def _sync_segment_stats(self) -> None:
        """Mirror the packed energy vector and reuse counters onto segments.

        Called at inspection/repack boundaries, not per step, so the hot
        path stays loop-free; ``reuse_steps`` is derived from the pass
        arithmetic (every primed segment gets exactly one force pass per
        engine step plus one at priming; each pass is either a build or
        a reuse, matching the solo ``CellState.ensure`` accounting).
        """
        # The packed energy vector indexes the segment list it was
        # produced for; after a remove (and before the repack) the two
        # are misaligned, and every segment's ``last_potential`` was
        # already synced by ``remove`` itself — skip the mirror then.
        aligned = len(self._energies) == len(self._segments)
        for k, seg in enumerate(self._segments):
            if not seg.primed:
                continue
            if aligned:
                seg.last_potential = float(self._energies[k])
            passes = (self.step_count - seg.start_step) + 1
            st = seg.state
            st.reuse_steps = st.builds_restore_base + passes - st.builds

    # -- packing -----------------------------------------------------------

    def _ensure_ready(self) -> None:
        """Pack pending segments and prime the unprimed ones."""
        if not self._pack_dirty:
            return
        self._sync_segment_stats()
        self._pack_particles()
        fresh = []
        for seg in self._segments:
            if seg.art is None:
                self._build_segment(seg)
                fresh.append(seg)
        self._pack_stream()
        self._pack_dirty = False
        if fresh:
            self._prime_segments(fresh)

    def _pack_particles(self) -> None:
        """Concatenate per-segment particle arrays into fresh row space."""
        segs = self._segments
        pos, vel, frc, spc, box_r, edges_snap = [], [], [], [], [], []
        build_p, cids = [], []
        for seg in segs:
            if seg.pending is not None:
                sysv = seg.pending
                p, v, f, s = (
                    sysv.positions, sysv.velocities, sysv.forces, sysv.species,
                )
            else:
                lo, hi = seg.base, seg.base + seg.n
                p = self._pos[lo:hi]
                v = self._vel[lo:hi]
                f = self._frc[lo:hi]
                s = self._spc[lo:hi]
            pos.append(p)
            vel.append(v)
            frc.append(f)
            spc.append(s)
            box_r.append(np.broadcast_to(seg.grid.box, (seg.n, 3)))
            if seg.art is not None:
                build_p.append(seg.state.build_positions)
                cids.append(seg.state.cids)
            else:
                build_p.append(np.zeros((seg.n, 3)))
                cids.append(np.zeros(seg.n, dtype=np.int64))
        n = sum(s.n for s in segs)
        self._n = n
        if n == 0:
            self._bases = np.zeros(1, dtype=np.int64)
            self._energies = np.zeros(0, dtype=np.float64)
            return
        self._pos = np.concatenate(pos) if segs else np.zeros((0, 3))
        self._vel = np.concatenate(vel)
        self._frc = np.concatenate(frc)
        self._new_frc = np.empty_like(self._frc)
        self._spc = np.ascontiguousarray(np.concatenate(spc), dtype=np.int32)
        self._box_rows = np.ascontiguousarray(np.concatenate(box_r))
        self._build_pos = np.concatenate(build_p)
        self._cids = np.concatenate(cids)
        self._masses = self._lj.masses[self._spc]
        from repro.util.units import KCAL_MOL_TO_INTERNAL

        # Constant per pack: acceleration_from_force's mass column and
        # scratch buffers for the allocation-free integrator variants.
        self._minv_col = np.ascontiguousarray(
            (KCAL_MOL_TO_INTERNAL / self._masses)[:, None]
        )
        self._accel_buf = np.empty_like(self._frc)
        self._sb1 = np.empty_like(self._frc)
        self._sb2 = np.empty_like(self._frc)
        self._mb1 = np.empty_like(self._frc)
        self._mb2 = np.empty_like(self._frc)
        self._thermo_segs = [s for s in segs if s.thermostat is not None]
        bases = np.zeros(len(segs) + 1, dtype=np.int64)
        dims_m1 = np.empty((n, 3), dtype=np.int64)
        sx = np.empty(n, dtype=np.int64)
        sy = np.empty(n, dtype=np.int64)
        off = 0
        for k, seg in enumerate(segs):
            seg.base = off
            bases[k + 1] = off + seg.n
            dx, dy, dz = seg.grid.dims
            dims_m1[off:off + seg.n] = (dx - 1, dy - 1, dz - 1)
            sx[off:off + seg.n] = dy * dz
            sy[off:off + seg.n] = dz
            seg.pending = None
            off += seg.n
        self._bases = bases
        self._dims_m1 = dims_m1
        self._sx = sx
        self._sy = sy
        self._skin2 = np.full(len(segs), (0.5 * self._skin) ** 2)
        self._energies = np.array(
            [s.last_potential for s in segs], dtype=np.float64
        )
        if self.guard is not None:
            md = self.guard.resolved_max_disp(self._cell_edge)
            self._guard_max_disp = md
            self._guard_disp2 = md * md
            self._guard_rowbuf = np.empty(n)
            # Watchdog references / exemptions (thermostatted segments
            # exchange energy by design, so only NVE segments are
            # watched; references persist across repacks on the
            # segment objects).
            self._guard_eref = np.array(
                [np.nan if s.e_ref is None else s.e_ref for s in segs]
            )
            self._guard_nve = np.array(
                [s.thermostat is None for s in segs], dtype=bool
            )
        # Slot space: coordinate columns + the two far-apart ghost slots.
        self._psx = np.empty(n + 2)
        self._psy = np.empty(n + 2)
        self._psz = np.empty(n + 2)
        self._psx[n:] = (0.0, 4.0 * self._cell_edge)
        self._psy[n:] = 0.0
        self._psz[n:] = 0.0
        self._fx = np.empty(n + 2)
        self._fy = np.empty(n + 2)
        self._fz = np.empty(n + 2)
        self._g_order = np.empty(n, dtype=np.int64)
        self._g_spc_slot = np.zeros(n + 2, dtype=np.int32)

    def _build_segment(self, seg: _Segment) -> None:
        """(Re)build one segment's band lists and flat artifacts."""
        lo, hi = seg.base, seg.base + seg.n
        if seg.pending is not None:
            positions = seg.pending.positions
        else:
            positions = self._pos[lo:hi]
        st = seg.state
        if not hasattr(st, "builds_restore_base"):
            st.builds_restore_base = st.builds + st.reuse_steps
        st.build(positions)
        st.last_rebuilt = True
        if not _padded_viable(seg.plan, st.clist):
            raise ValidationError(
                f"segment {seg.handle} occupancy is not padded-viable; "
                "batched stepping requires the dense band path (a solo run "
                "would take the chunked fresh path with a different stream)"
            )
        st.artifacts["usable"] = True
        seg.art = _FlatArtifacts(
            st.pairs, seg.plan, self._spc[lo:hi], st.clist.order
        )
        seg.live = len(seg.art.a)
        self._build_pos[lo:hi] = st.build_positions
        self._cids[lo:hi] = st.cids

    def _pack_stream(self) -> None:
        """Lay out every segment's pair-stream region with capacity slack."""
        segs = self._segments
        # One shift-table block per distinct plan (plans are cached per
        # geometry, so same-shaped segments share one block).
        blocks: List[np.ndarray] = []
        block_of: Dict[int, int] = {}
        rows = 0
        for seg in segs:
            pid = id(seg.plan)
            if pid not in block_of:
                block_of[pid] = rows
                rows += seg.plan.n_rows
                blocks.append(seg.plan.shift)
            seg.stab_base = block_of[pid]
        self._g_stab = (
            np.ascontiguousarray(np.concatenate(blocks))
            if blocks else np.zeros((0, 3))
        )
        total = 0
        for seg in segs:
            seg.lo = total
            seg.cap = max(int(seg.live * PAIR_SLACK) + 1, seg.live, _MIN_CAP)
            total += seg.cap
        g0 = np.int64(self._n)      # ghost slot indices
        g1 = np.int64(self._n + 1)
        self._g_a = np.full(total, g0, dtype=np.int64)
        self._g_b = np.full(total, g1, dtype=np.int64)
        self._g_srow = np.full(total, -1, dtype=np.int32)
        self._seg_lo = np.zeros(len(segs), dtype=np.int64)
        self._seg_hi = np.zeros(len(segs), dtype=np.int64)
        for k, seg in enumerate(segs):
            self._seg_lo[k] = seg.lo
            self._write_segment_stream(k, seg)

    def _write_segment_stream(self, k: int, seg: _Segment) -> None:
        """Splice one segment's live pairs (and pad tail) into the stream."""
        art = seg.art
        lo, live, cap = seg.lo, seg.live, seg.cap
        self._g_a[lo:lo + live] = art.a + seg.base
        self._g_b[lo:lo + live] = art.b + seg.base
        srow = art.srow.astype(np.int64)
        np.add(srow, seg.stab_base, where=srow >= 0, out=srow)
        self._g_srow[lo:lo + live] = srow.astype(np.int32)
        self._g_a[lo + live:lo + cap] = self._n
        self._g_b[lo + live:lo + cap] = self._n + 1
        self._g_srow[lo + live:lo + cap] = -1
        self._seg_hi[k] = lo + live
        base, n = seg.base, seg.n
        self._g_order[base:base + n] = seg.state.clist.order + base
        self._g_spc_slot[base:base + n] = art.spc32

    # -- the hot path ------------------------------------------------------

    def _rebuild_mask(self) -> np.ndarray:
        """Vectorized restatement of every segment's ``needs_rebuild``.

        Elementwise displacement / cell-assignment arithmetic over the
        whole batch, segmented by exact ``reduceat`` reductions — the
        comparisons are the solo predicate's, so each segment rebuilds
        on exactly the steps its solo run would.
        """
        delta, t = self._mb1, self._mb2
        np.subtract(self._pos, self._build_pos, out=delta)
        np.divide(delta, self._box_rows, out=t)
        np.rint(t, out=t)
        np.multiply(self._box_rows, t, out=t)
        np.subtract(delta, t, out=delta)
        np.multiply(delta, delta, out=delta)
        disp2 = np.sum(delta, axis=1)
        seg_max = np.maximum.reduceat(disp2, self._bases[:-1])
        trip = seg_max > self._skin2
        np.divide(self._pos, self._cell_edge, out=t)
        np.floor(t, out=t)
        # A quarantine-pending segment may hold NaN positions for the
        # remainder of its final step; the cast verdict for such rows is
        # irrelevant (the segment is excluded from rebuilds), so silence
        # the invalid-cast warning.  Finite rows cast identically.
        with np.errstate(invalid="ignore"):
            coords = t.astype(np.int64)
        np.minimum(coords, self._dims_m1, out=coords)
        cids = self._sx * coords[:, 0] + self._sy * coords[:, 1] + coords[:, 2]
        moved = (cids != self._cids).astype(np.int64)
        mism = np.add.reduceat(moved, self._bases[:-1]) > 0
        return trip | mism

    def _force_pass(self) -> np.ndarray:
        """One fused force evaluation; returns per-segment energies."""
        rebuild = self._rebuild_mask()
        if self._step_tripped:
            # A tripped segment keeps its stale stream for its final
            # step (its coordinates may no longer be safe to re-bin);
            # any pair it still lists only references its own slots, and
            # NaN/ghost distances fail the exact r2 < cutoff2 test, so
            # the survivors' accumulations are untouched either way.
            rebuild[list(self._step_tripped)] = False
        idxs = np.flatnonzero(rebuild)
        if idxs.size:
            overflow = False
            for k in idxs:
                seg = self._segments[k]
                self._build_segment(seg)
                if seg.live > seg.cap:
                    overflow = True
                else:
                    self._write_segment_stream(k, seg)
            if overflow:
                self._pack_stream()
        n = self._n
        np.take(self._pos[:, 0], self._g_order, out=self._psx[:n])
        np.take(self._pos[:, 1], self._g_order, out=self._psy[:n])
        np.take(self._pos[:, 2], self._g_order, out=self._psz[:n])
        self._fx.fill(0.0)
        self._fy.fill(0.0)
        self._fz.fill(0.0)
        energies = self._backend.lj_flat_seg(
            self._psx, self._psy, self._psz,
            self._g_a, self._g_b, self._g_srow, self._g_stab,
            self._g_spc_slot, self._lj, self._cutoff2, self._shift_e,
            self._fx, self._fy, self._fz, self._seg_lo, self._seg_hi,
        )
        self._new_frc[self._g_order, 0] = self._fx[:n]
        self._new_frc[self._g_order, 1] = self._fy[:n]
        self._new_frc[self._g_order, 2] = self._fz[:n]
        return energies

    def _prime_segments(self, fresh: List[_Segment]) -> None:
        """Evaluate initial forces for newly packed segments only.

        A restricted kernel call over just those segments' stream
        ranges, scattered into just their force rows — the established
        segments' state is untouched, so a mid-campaign swap-in never
        disturbs running trajectories.
        """
        n = self._n
        np.take(self._pos[:, 0], self._g_order, out=self._psx[:n])
        np.take(self._pos[:, 1], self._g_order, out=self._psy[:n])
        np.take(self._pos[:, 2], self._g_order, out=self._psz[:n])
        self._fx.fill(0.0)
        self._fy.fill(0.0)
        self._fz.fill(0.0)
        index_of = {id(s): k for k, s in enumerate(self._segments)}
        ks = np.array(sorted(index_of[id(s)] for s in fresh), dtype=np.int64)
        # The pure-numpy kernel groups *adjacent* stream regions into one
        # span, so a restricted call must not skip over live foreign
        # segments.  Fresh segments are appended, hence normally a
        # contiguous suffix — fall back to one call per segment if not.
        if int(ks[-1] - ks[0]) + 1 == len(ks):
            groups = [ks]
        else:
            groups = [ks[i:i + 1] for i in range(len(ks))]
        pairs = []
        for grp in groups:
            energies = self._backend.lj_flat_seg(
                self._psx, self._psy, self._psz,
                self._g_a, self._g_b, self._g_srow, self._g_stab,
                self._g_spc_slot, self._lj, self._cutoff2, self._shift_e,
                self._fx, self._fy, self._fz,
                self._seg_lo[grp], self._seg_hi[grp],
            )
            pairs.extend(zip(energies, grp))
        for e_k, k in pairs:
            seg = self._segments[k]
            lo, hi = seg.base, seg.base + seg.n
            sl = self._g_order[lo:hi]
            self._frc[sl, 0] = self._fx[lo:hi]
            self._frc[sl, 1] = self._fy[lo:hi]
            self._frc[sl, 2] = self._fz[lo:hi]
            self._energies[k] = e_k
            seg.last_potential = float(e_k)
            seg.primed = True
            seg.start_step = self.step_count

    # -- health guards (DESIGN.md §12) -------------------------------------

    def _trip(self, k: int, reason: str, value: float, threshold: float) -> None:
        """Mark segment index ``k`` poisoned for end-of-step quarantine."""
        if k not in self._step_tripped:
            self._step_tripped[k] = (reason, float(value), float(threshold))

    def _row_norm2(self, sq: np.ndarray) -> np.ndarray:
        """Row sums of a pre-squared ``(N, 3)`` array into the guard buffer.

        Two strided column adds instead of ``np.sum(axis=1, out=...)``,
        which is an order of magnitude slower for this shape and would
        alone blow the guards' <2% overhead budget.
        """
        buf = self._guard_rowbuf
        np.add(sq[:, 0], sq[:, 1], out=buf)
        np.add(buf, sq[:, 2], out=buf)
        return buf

    def _guard_displacement(self) -> None:
        """Max-displacement-per-step tripwire (also catches NaN/Inf).

        Reads the per-row displacement the drift just wrote into
        ``_sb1`` (see :meth:`VelocityVerlet.drift_buffered`), squares it
        into scratch, and reduces segment-wise — the exact
        ``reduceat``-over-``bases`` shape of :meth:`_rebuild_mask`.  A
        NaN or Inf displacement (non-finite velocity or force upstream)
        fails the ``<=`` comparison just like an oversized one, so this
        single check covers position finiteness inductively: admission
        screened the initial state, and every later position is
        ``previous + displacement``.
        """
        np.multiply(self._sb1, self._sb1, out=self._mb1)
        disp2 = self._row_norm2(self._mb1)
        seg_max = np.maximum.reduceat(disp2, self._bases[:-1])
        ok = seg_max <= self._guard_disp2
        if ok.all():
            return
        for k in np.flatnonzero(~ok):
            self._trip(
                int(k), REASON_DISPLACEMENT,
                float(np.sqrt(seg_max[k])), self._guard_max_disp,
            )

    def _guard_forces(self, energies: np.ndarray) -> None:
        """Segment-wise finite checks on fresh forces and energies.

        Healthy path: one O(N) screen (three slot-column sums plus an
        ``isfinite`` over the K energies).  Only a failing screen pays
        the per-segment attribution pass.  Slot space is
        segment-contiguous (``_g_order`` offsets each segment's bucket
        order by its row base), so attribution is one ``reduceat`` over
        the same ``bases``.
        """
        n = self._n
        screen = (
            float(self._fx[:n].sum())
            + float(self._fy[:n].sum())
            + float(self._fz[:n].sum())
        )
        bad_e = ~np.isfinite(energies)
        if np.isfinite(screen) and not bad_e.any():
            return
        finite_rows = (
            np.isfinite(self._fx[:n])
            & np.isfinite(self._fy[:n])
            & np.isfinite(self._fz[:n])
        )
        bad_rows = np.add.reduceat(
            (~finite_rows).astype(np.int64), self._bases[:-1]
        )
        for k in np.flatnonzero(bad_rows > 0):
            self._trip(int(k), REASON_FORCE, float(bad_rows[k]), 0.0)
        for k in np.flatnonzero(bad_e):
            self._trip(int(k), REASON_ENERGY, float(energies[k]), 0.0)
        # A screen that failed by pure float64 overflow of the *sum* of
        # huge-but-finite forces attributes to no segment; the resulting
        # displacement trips the drift guard next step instead.

    def _guard_energy_drift(self, energies: np.ndarray) -> None:
        """Optional watchdog: total-energy drift of NVE segments.

        Runs post-kick so kinetic and potential describe the same time
        point; thermostatted segments are exempt (they exchange energy
        by design).  References are captured on each segment's first
        watched step and persist across repacks.
        """
        tol = self.guard.energy_drift_tol
        np.multiply(self._vel, self._vel, out=self._mb1)
        v2 = self._row_norm2(self._mb1)
        np.multiply(v2, self._masses, out=v2)
        ke = 0.5 * np.add.reduceat(v2, self._bases[:-1]) / KCAL_MOL_TO_INTERNAL
        etot = ke + energies
        fresh = np.isnan(self._guard_eref) & self._guard_nve
        if fresh.any():
            self._guard_eref[fresh] = etot[fresh]
            for k in np.flatnonzero(fresh):
                self._segments[k].e_ref = float(etot[k])
        scale = np.maximum(np.abs(self._guard_eref), 1.0)
        drifted = self._guard_nve & (
            np.abs(etot - self._guard_eref) > tol * scale
        )
        for k in np.flatnonzero(drifted):
            self._trip(
                int(k), REASON_DRIFT,
                float(abs(etot[k] - self._guard_eref[k])),
                float(tol * scale[k]),
            )

    def _quarantine_tripped(self) -> None:
        """Swap every tripped segment out through :meth:`remove`.

        The survivors' packed values are copied verbatim at the next
        repack, so their trajectories continue bitwise as if the
        poisoned job had never been admitted — the same guarantee any
        other mid-run :meth:`remove` gives.
        """
        tripped = self._step_tripped
        self._step_tripped = {}
        # Resolve indices to segments before any removal: remove()
        # shrinks the segment list, so positional indices recorded at
        # trip time go stale the moment the first segment leaves.
        resolved = [(self._segments[k], tripped[k]) for k in sorted(tripped)]
        for seg, (reason, value, threshold) in resolved:
            record = PoisonRecord(
                handle=seg.handle,
                step=self.step_count,
                reason=reason,
                value=value,
                threshold=threshold,
                segment_steps=self.segment_steps(seg.handle),
            )
            record.system = self.remove(seg.handle)
            self.poison_log.append(record)

    def step(self, n_steps: int = 1) -> None:
        """Advance every segment ``n_steps`` timesteps.

        Per step: one vectorized drift, one fused force pass (with any
        needed per-segment rebuilds), one vectorized kick, and the
        per-segment thermostats.  No per-system Python loop touches the
        numerical arrays; the only per-segment step work is the
        constant-time reuse-counter bookkeeping.

        With :attr:`guard` set, the health checks run inside the step —
        read-only, so the healthy path stays bitwise identical — and
        any tripped segment finishes the step on its own rows (pairs of
        a poisoned segment never reference foreign slots) before being
        quarantined into :attr:`poison_log` at the step boundary.
        """
        if n_steps < 0:
            raise ValidationError("n_steps must be >= 0")
        self._ensure_ready()
        if self._n == 0:
            return
        integ = self._integrator
        guard = self.guard
        for _ in range(n_steps):
            if self._pack_dirty:
                # Re-pack after a quarantine at the previous boundary.
                self._ensure_ready()
                if self._n == 0:
                    return
            accel = integ.drift_buffered(
                self._pos, self._vel, self._frc, self._minv_col,
                self._box_rows, self._accel_buf, self._sb1, self._sb2,
            )
            if guard is not None:
                self._guard_displacement()
            self._energies = self._force_pass()
            if guard is not None:
                self._guard_forces(self._energies)
            integ.kick_buffered(
                self._vel, self._frc, self._new_frc, accel,
                self._minv_col, self._sb1,
            )
            if guard is not None and guard.energy_drift_tol is not None:
                self._guard_energy_drift(self._energies)
            for seg in self._thermo_segs:
                lo, hi = seg.base, seg.base + seg.n
                seg.thermostat.apply_arrays(
                    self._vel[lo:hi], self._masses[lo:hi]
                )
            self.step_count += 1
            if self._step_tripped:
                self._quarantine_tripped()

    def run(self, n_steps: int, record_every: int = 0) -> None:
        """Alias of :meth:`step` (harness compatibility)."""
        self.step(n_steps)

    def prime(self) -> None:
        """Pack and prime without stepping (exposed for benchmarks)."""
        self._ensure_ready()

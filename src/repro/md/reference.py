"""Double-precision reference force evaluation (the golden model).

Two implementations of the range-limited LJ force (paper Eqs. 1-2):

* :func:`compute_forces_cells` — O(N*m) cell-list/half-shell evaluation,
  vectorized over every cell pair; this is what production runs use and
  what the FASDA machine is compared against.
* :func:`compute_forces_bruteforce` — O(N^2) minimum-image evaluation for
  small systems; exists purely to cross-check the cell-list code in tests.

Both apply a plain truncation at the cutoff (no switching function), as
the paper's LJ-only custom force field does, and optionally shift the
potential so V(R_c) = 0 for energy bookkeeping.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.md.cells import CellGrid, CellList, HALF_SHELL_OFFSETS
from repro.md.params import LJTable
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError


def _pair_forces_energy(
    dr: np.ndarray,
    r2: np.ndarray,
    si: np.ndarray,
    sj: np.ndarray,
    lj: LJTable,
    shift_energy: float,
) -> Tuple[np.ndarray, float]:
    """Force vectors on i from j, and total pair energy, for given pairs.

    ``dr`` is ``x_i - x_j`` so a *repulsive* (positive) coefficient pushes
    particle i away from j along ``+dr``.
    """
    inv_r2 = 1.0 / r2
    inv_r6 = inv_r2 * inv_r2 * inv_r2
    inv_r8 = inv_r6 * inv_r2
    inv_r12 = inv_r6 * inv_r6
    inv_r14 = inv_r12 * inv_r2
    c14 = lj.c14[si, sj]
    c8 = lj.c8[si, sj]
    scalar = c14 * inv_r14 - c8 * inv_r8
    forces = scalar[:, None] * dr
    energy = float(
        np.sum(lj.c12[si, sj] * inv_r12 - lj.c6[si, sj] * inv_r6)
        - shift_energy * len(r2)
    )
    return forces, energy


def _cutoff_shift(lj: LJTable, cutoff: float, shift: bool) -> float:
    """Per-pair energy shift so V(cutoff) == 0 (species 0-0 only).

    A full per-pair-species shift table would be straightforward, but the
    paper's workload is single-species; we raise if a shifted multi-
    species run is requested rather than silently mis-shifting.
    """
    if not shift:
        return 0.0
    if lj.n_species != 1:
        raise ValidationError("energy shift is only supported for single-species tables")
    inv2 = 1.0 / cutoff ** 2
    return float(lj.c12[0, 0] * inv2 ** 6 - lj.c6[0, 0] * inv2 ** 3)


def compute_forces_bruteforce(
    system: ParticleSystem, cutoff: float, shift: bool = False
) -> Tuple[np.ndarray, float]:
    """O(N^2) minimum-image LJ forces and potential energy.

    Only suitable for small N; used to validate the cell-list path.
    """
    pos = system.positions
    n = system.n
    forces = np.zeros_like(pos)
    ii, jj = np.triu_indices(n, k=1)
    dr = pos[ii] - pos[jj]
    dr -= system.box * np.rint(dr / system.box)
    r2 = np.sum(dr * dr, axis=1)
    mask = r2 < cutoff * cutoff
    ii, jj, dr, r2 = ii[mask], jj[mask], dr[mask], r2[mask]
    if len(r2) == 0:
        return forces, 0.0
    shift_e = _cutoff_shift(system.lj_table, cutoff, shift)
    f, energy = _pair_forces_energy(
        dr, r2, system.species[ii], system.species[jj], system.lj_table, shift_e
    )
    np.add.at(forces, ii, f)
    np.add.at(forces, jj, -f)
    return forces, energy


def compute_forces_cells(
    system: ParticleSystem,
    grid: CellGrid,
    shift: bool = False,
) -> Tuple[np.ndarray, float]:
    """Cell-list + half-shell LJ forces and potential energy.

    The cutoff equals ``grid.cell_edge``.  For every home cell the
    home-home upper-triangle pairs and the 13 half-shell cell pairs are
    evaluated with broadcasting, forces scattered back with
    ``np.add.at`` — Newton's third law applied exactly once per pair.
    """
    if not np.allclose(grid.box, system.box):
        raise ValidationError(
            f"grid box {grid.box} does not match system box {system.box}"
        )
    cutoff = grid.cell_edge
    cutoff2 = cutoff * cutoff
    shift_e = _cutoff_shift(system.lj_table, cutoff, shift)
    pos = system.positions
    spc = system.species
    lj = system.lj_table
    forces = np.zeros_like(pos)
    energy = 0.0
    clist = CellList(grid, pos)

    for cid in clist.cells_nonempty():
        home_idx = clist.particles_in_cell(cid)
        hp = pos[home_idx]
        hs = spc[home_idx]
        # Home-home pairs (upper triangle).
        if len(home_idx) > 1:
            ii, jj = np.triu_indices(len(home_idx), k=1)
            dr = hp[ii] - hp[jj]
            r2 = np.sum(dr * dr, axis=1)
            mask = r2 < cutoff2
            if np.any(mask):
                f, e = _pair_forces_energy(
                    dr[mask], r2[mask], hs[ii[mask]], hs[jj[mask]], lj, shift_e
                )
                np.add.at(forces, home_idx[ii[mask]], f)
                np.add.at(forces, home_idx[jj[mask]], -f)
                energy += e
        # Half-shell neighbor cells.
        coord = tuple(int(c) for c in grid.cell_coords(np.int64(cid)))
        for offset in HALF_SHELL_OFFSETS:
            ncoord, img_shift = grid.neighbor_with_shift(coord, offset)
            ncid = int(grid.cell_id(np.asarray(ncoord)))
            nbr_idx = clist.particles_in_cell(ncid)
            if len(nbr_idx) == 0:
                continue
            npos = pos[nbr_idx] + img_shift
            dr = hp[:, None, :] - npos[None, :, :]
            r2 = np.einsum("ijk,ijk->ij", dr, dr)
            mask = r2 < cutoff2
            if not np.any(mask):
                continue
            hi, nj = np.nonzero(mask)
            f, e = _pair_forces_energy(
                dr[hi, nj], r2[hi, nj], hs[hi], spc[nbr_idx[nj]], lj, shift_e
            )
            np.add.at(forces, home_idx[hi], f)
            np.add.at(forces, nbr_idx[nj], -f)
            energy += e
    return forces, energy

"""Double-precision reference force evaluation (the golden model).

Three implementations of the range-limited LJ force (paper Eqs. 1-2):

* :func:`compute_forces_cells` — cell-list/half-shell evaluation driven
  by the cached :class:`~repro.md.pairplan.CellPairPlan`: all candidate
  pairs for the step are enumerated in a few large batches, the LJ
  kernel runs fused over each batch, and forces scatter back through
  :func:`~repro.md.kernels.scatter_add`.  This is what production runs
  use and what the FASDA machine is compared against.
* :func:`compute_forces_cells_loop` — the original per-cell Python loop,
  kept as an independently-coded equivalence oracle for the batched path
  (and as the pre-plan baseline for ``benchmarks/bench_hotpath.py``).
* :func:`compute_forces_bruteforce` — O(N^2) minimum-image evaluation for
  small systems; exists purely to cross-check the cell-list code in tests.

All apply a plain truncation at the cutoff (no switching function), as
the paper's LJ-only custom force field does, and optionally shift the
potential so V(R_c) = 0 for energy bookkeeping.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.md.cellstate import CellState

from repro.md.backends import ForceBackend, resolve_backend
from repro.md.cells import CellGrid, CellList, HALF_SHELL_OFFSETS
from repro.md.kernels import lj_scalar_energy, pair_forces_energy, scatter_add
from repro.md.params import LJTable
from repro.md.pairplan import (
    ROWS_PER_CELL,
    CellPairPlan,
    candidates_per_cell,
    iter_pair_chunks,
    plan_for_grid,
)
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError

# Kept under its historical name: the shared kernel used to live here as
# a private helper and external callers import it by this name.
_pair_forces_energy = pair_forces_energy


def _cutoff_shift(lj: LJTable, cutoff: float, shift: bool) -> float:
    """Per-pair energy shift so V(cutoff) == 0 (species 0-0 only).

    A full per-pair-species shift table would be straightforward, but the
    paper's workload is single-species; we raise if a shifted multi-
    species run is requested rather than silently mis-shifting.
    """
    if not shift:
        return 0.0
    if lj.n_species != 1:
        raise ValidationError("energy shift is only supported for single-species tables")
    inv2 = 1.0 / cutoff ** 2
    return float(lj.c12[0, 0] * inv2 ** 6 - lj.c6[0, 0] * inv2 ** 3)


def compute_forces_bruteforce(
    system: ParticleSystem, cutoff: float, shift: bool = False
) -> Tuple[np.ndarray, float]:
    """O(N^2) minimum-image LJ forces and potential energy.

    Only suitable for small N; used to validate the cell-list path.
    """
    pos = system.positions
    n = system.n
    forces = np.zeros_like(pos)
    ii, jj = np.triu_indices(n, k=1)
    dr = pos[ii] - pos[jj]
    dr -= system.box * np.rint(dr / system.box)
    r2 = np.sum(dr * dr, axis=1)
    mask = r2 < cutoff * cutoff
    ii, jj, dr, r2 = ii[mask], jj[mask], dr[mask], r2[mask]
    if len(r2) == 0:
        return forces, 0.0
    shift_e = _cutoff_shift(system.lj_table, cutoff, shift)
    f, energy = pair_forces_energy(
        dr, r2, system.species[ii], system.species[jj], system.lj_table, shift_e
    )
    scatter_add(forces, ii, f)
    scatter_add(forces, jj, -f)
    return forces, energy


#: Padded-broadcast fast-path limits: per-offset scratch is ``C * cap^2``
#: float32 elements (80 MB at the element cap), and padding waste — padded
#: candidate volume over true half-shell candidates — must stay bounded
#: or sparse/skewed occupancies would burn bandwidth on sentinel slots.
_PADDED_MAX_ELEMS = 20_000_000
_PADDED_MAX_WASTE = 8.0


@lru_cache(maxsize=2)
def _decode_tables(n_cells: int, cap: int):
    """Cached flat-index -> (cell, home slot, neighbor slot) decode tables.

    A flat survivor index into the ``(C, cap, cap)`` mask decodes as
    ``cell = f // cap^2``, ``i = (f // cap) % cap``, ``j = f % cap``;
    precomputing the tables turns three per-survivor integer divisions
    per offset into three cheap int32 gathers.  Keyed on ``(C, cap)``
    only, so consecutive steps of the same box reuse them.
    """
    cap2 = cap * cap
    f = np.arange(n_cells * cap2, dtype=np.int64)
    cell_of = (f // cap2).astype(np.int32)
    i_of = ((f // cap) % cap).astype(np.int32)
    j_of = (f % cap).astype(np.int32)
    return cell_of, i_of, j_of


def _padded_viable(plan: CellPairPlan, clist: CellList) -> bool:
    """Whether the dense padded broadcast beats chunked gather-enumeration.

    The padded path does ``ROWS_PER_CELL * C * cap^2`` distance work no
    matter how full the buckets are; it wins exactly when occupancy is
    dense and even (the paper's 64-per-cell workload), and loses to the
    chunked enumerator on sparse or skewed boxes.
    """
    if clist.counts.size == 0:
        return False
    cap = int(clist.counts.max())
    if cap < 2:
        return False
    vol = plan.n_cells * cap * cap
    if vol > _PADDED_MAX_ELEMS:
        return False
    cand = int(candidates_per_cell(plan, clist.counts).sum())
    if cand == 0:
        return False
    return ROWS_PER_CELL * vol <= _PADDED_MAX_WASTE * 2 * cand


def _forces_cells_padded(
    pos: np.ndarray,
    spc: np.ndarray,
    lj: LJTable,
    plan: CellPairPlan,
    clist: CellList,
    cutoff2: float,
    shift_e: float,
) -> Tuple[np.ndarray, float]:
    """Dense padded-broadcast evaluation of the half-shell traversal.

    Per-pair fancy gathers are the bandwidth floor of the chunked path;
    this path never gathers per *candidate*.  Buckets are padded to the
    max occupancy ``cap`` and each of the 14 plan offsets becomes one
    ``(C, cap, cap)`` batched matmul over float32 *cell-local* coordinates
    (``r2 = |p_i|^2 + |p_j|^2 - 2 p_i.p_j``), a conservative-band cutoff
    test, and one ``flatnonzero`` compaction.  Only the surviving ~15%
    are rechecked in float64 with the exact same ``pos[i] - pos[j] -
    shift`` arithmetic as the chunked path, so accepted pairs and their
    ``dr`` are bit-identical; the band (1e-3 relative, ~1000x the f32
    error bound of cell-local coordinates) only ever lets *extra* pairs
    through to the recheck, never drops true ones.
    """
    order, start, counts = clist.order, clist.start, clist.counts
    C = plan.n_cells
    cap = int(counts.max())
    n = len(pos)
    cids = np.arange(C, dtype=np.int64)
    corner = plan.edges * plan.cell_coords_of(cids)

    # Bucket-sorted coordinates: slot s holds particle order[s].
    ps = pos[order]
    local = ps - corner[clist.sorted_cids]
    if np.abs(local).max(initial=0.0) > 4.0 * plan.edges.max():
        # Positions far outside the box break the f32 error bound the
        # band relies on; signal the caller to take the chunked path.
        raise FloatingPointError("positions not box-local")
    psx, psy, psz = ps[:, 0].copy(), ps[:, 1].copy(), ps[:, 2].copy()
    within = np.arange(n, dtype=np.int64) - start[clist.sorted_cids]
    P = np.zeros((C, cap, 3), dtype=np.float32)
    P[clist.sorted_cids, within] = local.astype(np.float32)
    padm = np.arange(cap)[None, :] >= counts[:, None]
    S = np.einsum("cix,cix->ci", P, P, dtype=np.float32)
    S[padm] = np.inf  # pad slots poison every r2 they appear in

    nbr_mat = plan.nbr.reshape(C, ROWS_PER_CELL)
    shift_mat = plan.shift.reshape(C, ROWS_PER_CELL, 3)
    off_len = np.concatenate(
        [np.zeros((1, 3)), np.asarray(HALF_SHELL_OFFSETS, dtype=np.float64)]
    ) * plan.edges
    band = np.float32(cutoff2 * (1.0 + 1e-3))

    # Flat-index decode tables: a single cached division pass over
    # C*cap^2 instead of three per offset over every survivor.  Cached
    # on the plan so every padded consumer shares one copy per geometry.
    cell_of, i_of, j_of = plan.padded_decode(cap)
    a_of = start[cell_of] + i_of

    iu = np.arange(cap)
    tri = iu[:, None] < iu[None, :]
    mask = np.empty((C, cap, cap), dtype=bool)
    multi = lj.n_species > 1
    sspc = spc[order] if multi else None

    fx = np.zeros(n)
    fy = np.zeros(n)
    fz = np.zeros(n)
    energy = 0.0
    G = np.empty((C, cap, cap), dtype=np.float32)
    H = np.empty((C, cap, cap), dtype=np.float32)
    for k in range(ROWS_PER_CELL):
        nb = nbr_mat[:, k]
        Q = P[nb] + off_len[k].astype(np.float32)
        Sq = np.einsum("cix,cix->ci", Q, Q, dtype=np.float32)
        Sq[padm[nb]] = np.inf
        np.matmul(P, Q.transpose(0, 2, 1), out=G)
        # r2 = S_i + Sq_j - 2 G_ij < band  <=>  G_ij > (S_i - band)/2 + Sq_j/2
        np.add(
            ((S - band) * np.float32(0.5))[:, :, None],
            (Sq * np.float32(0.5))[:, None, :],
            out=H,
        )
        np.greater(G, H, out=mask)
        if k == 0:
            mask &= tri  # home-home upper triangle
        flat = np.flatnonzero(mask.reshape(-1))
        if flat.size == 0:
            continue
        a = a_of[flat]
        c = cell_of[flat]
        b = start[nb][c] + j_of[flat]
        # Exact float64 recheck with the chunked path's arithmetic:
        # dr = pos[i] - pos[j] - shift, r2 = dx^2 + dy^2 + dz^2.  The
        # shift is zero except in boundary cells, so it is subtracted
        # only for survivors living there (subtracting 0 elsewhere would
        # be a bitwise no-op at three full passes' cost).
        dxa = psx[a]
        dxa -= psx[b]
        dya = psy[a]
        dya -= psy[b]
        dza = psz[a]
        dza -= psz[b]
        if k > 0:
            shifted_cells = np.any(shift_mat[:, k] != 0.0, axis=1)
            if shifted_cells.any():
                sel = np.flatnonzero(shifted_cells[c])
                if sel.size:
                    cs_sel = c[sel]
                    dxa[sel] -= shift_mat[:, k, 0][cs_sel]
                    dya[sel] -= shift_mat[:, k, 1][cs_sel]
                    dza[sel] -= shift_mat[:, k, 2][cs_sel]
        r2 = dxa * dxa
        tmp = dya * dya
        r2 += tmp
        np.multiply(dza, dza, out=tmp)
        r2 += tmp
        drop = r2 >= cutoff2  # band survivors beyond the true cutoff
        n_kept = len(r2) - int(np.count_nonzero(drop))
        if n_kept == 0:
            continue
        if n_kept != len(r2):
            r2[drop] = np.inf  # 1/inf = 0 zeroes their force and energy
        si = sspc[a] if multi else None
        sj = sspc[b] if multi else None
        scalar, evec = lj_scalar_energy(r2, si, sj, lj)
        energy += float(np.sum(evec)) - shift_e * n_kept
        fxa = scalar * dxa
        fx += np.bincount(a, weights=fxa, minlength=n)
        fx -= np.bincount(b, weights=fxa, minlength=n)
        np.multiply(scalar, dya, out=fxa)
        fy += np.bincount(a, weights=fxa, minlength=n)
        fy -= np.bincount(b, weights=fxa, minlength=n)
        np.multiply(scalar, dza, out=fxa)
        fz += np.bincount(a, weights=fxa, minlength=n)
        fz -= np.bincount(b, weights=fxa, minlength=n)

    forces = np.empty_like(pos)
    forces[order, 0] = fx
    forces[order, 1] = fy
    forces[order, 2] = fz
    return forces, energy


class _EngineArtifacts:
    """Per-build static gathers for :func:`_forces_cells_reuse`.

    Everything here depends only on the band lists and the (frozen)
    binning, so it is computed once per rebuild and cached on the
    :class:`~repro.md.cellstate.CellState`: per-offset ``(a, b)`` slot
    slices, the shifted-survivor selections with their pre-gathered
    image shifts, and (multi-species only) the per-pair species codes.
    """

    __slots__ = ("ab", "shifts", "species")

    def __init__(self, pairs, plan, spc, order, multi: bool):
        segs = pairs.segs
        shift_mat = plan.shift.reshape(plan.n_cells, ROWS_PER_CELL, 3)
        sspc = spc[order] if multi else None
        self.ab = []
        self.shifts = []
        self.species = []
        for k in range(ROWS_PER_CELL):
            lo, hi = int(segs[k]), int(segs[k + 1])
            a = pairs.a[lo:hi]
            b = pairs.b[lo:hi]
            self.ab.append((a, b))
            ent = None
            if k > 0 and lo != hi:
                shifted_cells = np.any(shift_mat[:, k] != 0.0, axis=1)
                if shifted_cells.any():
                    c = pairs.c[lo:hi]
                    sel = np.flatnonzero(shifted_cells[c])
                    if sel.size:
                        cs = c[sel]
                        ent = (
                            sel,
                            shift_mat[:, k, 0][cs],
                            shift_mat[:, k, 1][cs],
                            shift_mat[:, k, 2][cs],
                        )
            self.shifts.append(ent)
            self.species.append((sspc[a], sspc[b]) if multi else None)


def _forces_cells_reuse(
    pos: np.ndarray,
    spc: np.ndarray,
    lj: LJTable,
    plan: CellPairPlan,
    clist: CellList,
    cutoff2: float,
    shift_e: float,
    state: "CellState",
) -> Tuple[np.ndarray, float]:
    """Skin-banded re-evaluation over a persistent :class:`CellState`.

    Runs the exact float64 recheck of :func:`_forces_cells_padded` over
    the stored band lists instead of fresh candidate matmuls.  The band
    (cutoff + skin, conservative f32 margin) is a superset of anything
    the fresh padded search can admit while no particle has moved more
    than skin/2, extra band pairs fail the same ``r2 >= cutoff2`` test
    and contribute exact-zero weights, and float64 bincount accumulation
    absorbs interleaved exact zeros bit-for-bit — so **forces are
    bitwise identical** to the fresh path.  The per-offset energy
    ``np.sum`` runs over a different-length array (numpy's pairwise
    tree changes shape), so the **energy agrees to float64 round-off**
    rather than bitwise; trajectories depend only on forces and stay
    bit-identical.
    """
    order = clist.order
    n = len(pos)
    ps = pos[order]
    psx, psy, psz = ps[:, 0].copy(), ps[:, 1].copy(), ps[:, 2].copy()
    multi = lj.n_species > 1
    art = state.artifacts.get("engine")
    if art is None:
        art = _EngineArtifacts(state.pairs, plan, spc, order, multi)
        state.artifacts["engine"] = art

    fx = np.zeros(n)
    fy = np.zeros(n)
    fz = np.zeros(n)
    energy = 0.0
    for k in range(ROWS_PER_CELL):
        a, b = art.ab[k]
        if a.size == 0:
            continue
        dxa = psx.take(a)
        dxa -= psx.take(b)
        dya = psy.take(a)
        dya -= psy.take(b)
        dza = psz.take(a)
        dza -= psz.take(b)
        ent = art.shifts[k]
        if ent is not None:
            sel, sx, sy, sz = ent
            dxa[sel] -= sx
            dya[sel] -= sy
            dza[sel] -= sz
        r2 = dxa * dxa
        tmp = dya * dya
        r2 += tmp
        np.multiply(dza, dza, out=tmp)
        r2 += tmp
        drop = r2 >= cutoff2
        n_kept = len(r2) - int(np.count_nonzero(drop))
        if n_kept == 0:
            continue
        if n_kept != len(r2):
            r2[drop] = np.inf  # 1/inf = 0 zeroes their force and energy
        si, sj = art.species[k] if multi else (None, None)
        scalar, evec = lj_scalar_energy(r2, si, sj, lj)
        energy += float(np.sum(evec)) - shift_e * n_kept
        fxa = scalar * dxa
        fx += np.bincount(a, weights=fxa, minlength=n)
        fx -= np.bincount(b, weights=fxa, minlength=n)
        np.multiply(scalar, dya, out=fxa)
        fy += np.bincount(a, weights=fxa, minlength=n)
        fy -= np.bincount(b, weights=fxa, minlength=n)
        np.multiply(scalar, dza, out=fxa)
        fz += np.bincount(a, weights=fxa, minlength=n)
        fz -= np.bincount(b, weights=fxa, minlength=n)

    forces = np.empty_like(pos)
    forces[order, 0] = fx
    forces[order, 1] = fy
    forces[order, 2] = fz
    return forces, energy


class _FlatArtifacts:
    """Per-build flat pair stream for the backend kernels.

    The SoA lowering of the band lists: the per-offset ``(a, b)`` slot
    segments concatenated into one flat ``(i_idx, j_idx)`` stream, a
    per-pair int32 shift-row index (``-1`` for the unshifted bulk) into
    the plan's ``(n_rows, 3)`` shift table, and the bucket-sorted
    species codes.  Everything depends only on the band lists and the
    frozen binning, so it is computed once per rebuild and cached on
    the :class:`~repro.md.cellstate.CellState` under ``"flat"``.
    """

    __slots__ = ("a", "b", "srow", "stab", "spc32")

    def __init__(self, pairs, plan, spc, order):
        segs = np.asarray(pairs.segs, dtype=np.int64)
        k_of = np.repeat(
            np.arange(ROWS_PER_CELL, dtype=np.int64), np.diff(segs)
        )
        rows = pairs.c * ROWS_PER_CELL + k_of
        self.srow = np.where(plan.has_shift[rows], rows, -1).astype(
            np.int32
        )
        self.a = np.ascontiguousarray(pairs.a, dtype=np.int64)
        self.b = np.ascontiguousarray(pairs.b, dtype=np.int64)
        self.stab = np.ascontiguousarray(plan.shift, dtype=np.float64)
        self.spc32 = np.ascontiguousarray(spc[order], dtype=np.int32)


def _forces_cells_flat(
    pos: np.ndarray,
    spc: np.ndarray,
    lj: LJTable,
    plan: CellPairPlan,
    clist: CellList,
    cutoff2: float,
    shift_e: float,
    state: "CellState",
    backend: ForceBackend,
) -> Tuple[np.ndarray, float]:
    """Band-list evaluation through a backend's fused flat kernel.

    The compiled/SoA analogue of :func:`_forces_cells_reuse`: same band
    lists, same exact float64 ``r2 < cutoff2`` admission, but one fused
    filter + LJ + scatter pass over the flat pair stream instead of 14
    per-offset numpy passes.  Admitted pairs are identical to the
    reference; forces and energy agree to the documented round-off
    bound (:data:`~repro.md.backends.FORCE_ATOL` /
    :data:`~repro.md.backends.ENERGY_RTOL`) because the accumulation
    order differs.
    """
    order = clist.order
    n = len(pos)
    ps = pos[order]
    psx, psy, psz = ps[:, 0].copy(), ps[:, 1].copy(), ps[:, 2].copy()
    art = state.artifacts.get("flat")
    if art is None:
        art = _FlatArtifacts(state.pairs, plan, spc, order)
        state.artifacts["flat"] = art
    fx = np.zeros(n)
    fy = np.zeros(n)
    fz = np.zeros(n)
    energy = backend.lj_flat(
        psx, psy, psz, art.a, art.b, art.srow, art.stab, art.spc32,
        lj, cutoff2, shift_e, fx, fy, fz,
    )
    forces = np.empty_like(pos)
    forces[order, 0] = fx
    forces[order, 1] = fy
    forces[order, 2] = fz
    return forces, float(energy)


def _forces_cells_flat_chunks(
    pos: np.ndarray,
    spc: np.ndarray,
    lj: LJTable,
    plan: CellPairPlan,
    clist: CellList,
    cutoff2: float,
    shift_e: float,
    backend: ForceBackend,
) -> Tuple[np.ndarray, float]:
    """Stateless chunked evaluation through a backend's flat kernel.

    Fresh-binning fallback for non-reference backends: the chunked
    enumerator produces candidate ``(ii, jj)`` particle indices and the
    fused kernel replaces the gather + einsum + LJ + scatter numpy
    passes.  Same exact admission; same documented round-off bound as
    :func:`_forces_cells_flat`.
    """
    n = len(pos)
    psx = np.ascontiguousarray(pos[:, 0])
    psy = np.ascontiguousarray(pos[:, 1])
    psz = np.ascontiguousarray(pos[:, 2])
    spc32 = np.ascontiguousarray(spc, dtype=np.int32)
    stab = np.ascontiguousarray(plan.shift, dtype=np.float64)
    fx = np.zeros(n)
    fy = np.zeros(n)
    fz = np.zeros(n)
    energy = 0.0
    for chunk in iter_pair_chunks(plan, clist.counts, clist.start, clist.order):
        srow = np.where(plan.has_shift[chunk.row], chunk.row, -1).astype(
            np.int32
        )
        energy += backend.lj_flat(
            psx, psy, psz,
            np.ascontiguousarray(chunk.ii, dtype=np.int64),
            np.ascontiguousarray(chunk.jj, dtype=np.int64),
            srow, stab, spc32, lj, cutoff2, shift_e, fx, fy, fz,
        )
    forces = np.empty_like(pos)
    forces[:, 0] = fx
    forces[:, 1] = fy
    forces[:, 2] = fz
    return forces, float(energy)


def compute_forces_cells(
    system: ParticleSystem,
    grid: CellGrid,
    shift: bool = False,
    state: Optional["CellState"] = None,
    force_impl: Optional[str] = None,
) -> Tuple[np.ndarray, float]:
    """Cell-list + half-shell LJ forces and potential energy (batched).

    The cutoff equals ``grid.cell_edge``.  Dense boxes (the paper's
    64-per-cell workload) take the padded-broadcast fast path of
    :func:`_forces_cells_padded`; sparse or skewed occupancies fall back
    to the chunked pair-plan enumerator.  Both cut each candidate batch
    at the cutoff, run the fused LJ kernel once per batch, and scatter
    with bincount accumulation — Newton's third law applied exactly once
    per pair.  Matches :func:`compute_forces_cells_loop` to float64
    round-off.

    With a persistent ``state`` (:class:`~repro.md.cellstate.CellState`
    built with :func:`~repro.md.cellstate.engine_pack_fn`), steps that
    pass the skin/2 + same-binning criterion skip binning and candidate
    search entirely (:func:`_forces_cells_reuse`): forces bitwise equal
    to the stateless call, energy equal to float64 round-off.  Sparse
    boxes where the padded path would not be viable mark the state
    unusable and keep taking the fresh path below.

    ``force_impl`` selects the force backend (see
    :mod:`repro.md.backends`): ``None`` uses the process-wide default
    (``"numpy"`` unless overridden), ``"numpy"`` forces the reference
    paths above, and ``"soa"``/``"numba"``/``"cext"`` route the same
    admission through a fused flat kernel — identical admitted pairs,
    forces/energy within the documented round-off bound.
    """
    if not np.allclose(grid.box, system.box):
        raise ValidationError(
            f"grid box {grid.box} does not match system box {system.box}"
        )
    cutoff2 = grid.cell_edge * grid.cell_edge
    shift_e = _cutoff_shift(system.lj_table, grid.cell_edge, shift)
    pos = system.positions
    spc = system.species
    lj = system.lj_table
    plan = plan_for_grid(grid)
    backend = resolve_backend(force_impl)

    if state is not None and state.artifacts.get("usable", True):
        try:
            rebuilt = state.ensure(pos)
        except FloatingPointError:
            rebuilt = None  # non-box-local positions: fresh path below
        if rebuilt is not None:
            if rebuilt:
                state.artifacts["usable"] = _padded_viable(plan, state.clist)
            if state.artifacts["usable"]:
                if backend.lj_flat is not None:
                    return _forces_cells_flat(
                        pos, spc, lj, plan, state.clist, cutoff2,
                        shift_e, state, backend,
                    )
                return _forces_cells_reuse(
                    pos, spc, lj, plan, state.clist, cutoff2, shift_e, state
                )

    forces = np.zeros_like(pos)
    energy = 0.0
    clist = CellList(grid, pos)

    if backend.lj_flat is not None:
        return _forces_cells_flat_chunks(
            pos, spc, lj, plan, clist, cutoff2, shift_e, backend
        )

    if _padded_viable(plan, clist):
        try:
            return _forces_cells_padded(
                pos, spc, lj, plan, clist, cutoff2, shift_e
            )
        except FloatingPointError:
            pass  # non-box-local positions: chunked path below

    for chunk in iter_pair_chunks(plan, clist.counts, clist.start, clist.order):
        dr = pos[chunk.ii] - pos[chunk.jj]
        shifted = plan.has_shift[chunk.row]
        if shifted.any():
            dr[shifted] -= plan.shift[chunk.row[shifted]]
        r2 = np.einsum("ij,ij->i", dr, dr)
        mask = r2 < cutoff2
        if not mask.any():
            continue
        ii = chunk.ii[mask]
        jj = chunk.jj[mask]
        f, e = pair_forces_energy(
            dr[mask], r2[mask], spc[ii], spc[jj], lj, shift_e
        )
        scatter_add(forces, ii, f)
        scatter_add(forces, jj, -f)
        energy += e
    return forces, energy


def compute_forces_cells_loop(
    system: ParticleSystem,
    grid: CellGrid,
    shift: bool = False,
) -> Tuple[np.ndarray, float]:
    """Per-cell-loop half-shell evaluation (pre-plan implementation).

    Semantically identical to :func:`compute_forces_cells` but walks the
    cells in Python and re-derives the half-shell topology per cell.
    Retained as an independent oracle for the batched path and as the
    baseline the hot-path benchmark measures speedup against.
    """
    if not np.allclose(grid.box, system.box):
        raise ValidationError(
            f"grid box {grid.box} does not match system box {system.box}"
        )
    cutoff = grid.cell_edge
    cutoff2 = cutoff * cutoff
    shift_e = _cutoff_shift(system.lj_table, cutoff, shift)
    pos = system.positions
    spc = system.species
    lj = system.lj_table
    forces = np.zeros_like(pos)
    energy = 0.0
    clist = CellList(grid, pos)

    for cid in clist.cells_nonempty():
        home_idx = clist.particles_in_cell(cid)
        hp = pos[home_idx]
        hs = spc[home_idx]
        # Home-home pairs (upper triangle).
        if len(home_idx) > 1:
            ii, jj = np.triu_indices(len(home_idx), k=1)
            dr = hp[ii] - hp[jj]
            r2 = np.sum(dr * dr, axis=1)
            mask = r2 < cutoff2
            if np.any(mask):
                f, e = pair_forces_energy(
                    dr[mask], r2[mask], hs[ii[mask]], hs[jj[mask]], lj, shift_e
                )
                np.add.at(forces, home_idx[ii[mask]], f)
                np.add.at(forces, home_idx[jj[mask]], -f)
                energy += e
        # Half-shell neighbor cells.
        coord = tuple(int(c) for c in grid.cell_coords(np.int64(cid)))
        for offset in HALF_SHELL_OFFSETS:
            ncoord, img_shift = grid.neighbor_with_shift(coord, offset)
            ncid = int(grid.cell_id(np.asarray(ncoord)))
            nbr_idx = clist.particles_in_cell(ncid)
            if len(nbr_idx) == 0:
                continue
            npos = pos[nbr_idx] + img_shift
            dr = hp[:, None, :] - npos[None, :, :]
            r2 = np.einsum("ijk,ijk->ij", dr, dr)
            mask = r2 < cutoff2
            if not np.any(mask):
                continue
            hi, nj = np.nonzero(mask)
            f, e = pair_forces_energy(
                dr[hi, nj], r2[hi, nj], hs[hi], spc[nbr_idx[nj]], lj, shift_e
            )
            np.add.at(forces, home_idx[hi], f)
            np.add.at(forces, nbr_idx[nj], -f)
            energy += e
    return forces, energy

"""Shared pair-interaction kernels and the hot-path scatter utility.

Two things live here because every force path in the repo needs them:

* :func:`pair_forces_energy` — the double-precision LJ force/energy math
  (paper Eqs. 1-2), formerly private to :mod:`repro.md.reference` and
  re-implemented inline by the Verlet path.  The physics lives in one
  place now; callers differ only in how they enumerate pairs.
* :func:`scatter_add` — index-accumulation via per-axis
  :func:`numpy.bincount`.  ``np.add.at`` is notoriously slow (it walks
  the fancy index with a buffered inner loop); ``bincount`` with a
  weights column runs at memory bandwidth and accumulates in float64,
  which is also *more* accurate for float32 outputs.  Every hot force
  scatter in the repo goes through this function.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.md.params import LJTable


def scatter_add(
    out: np.ndarray, idx: np.ndarray, vals: Optional[np.ndarray] = None
) -> np.ndarray:
    """Accumulate ``vals`` rows into ``out`` at ``idx`` (``out[idx] += vals``).

    Drop-in replacement for ``np.add.at(out, idx, vals)`` built on
    :func:`numpy.bincount`, which is roughly an order of magnitude
    faster for the large scatter batches the force kernels produce.

    Parameters
    ----------
    out:
        ``(N,)`` or ``(N, D)`` accumulator, modified in place.
    idx:
        Integer indices into the first axis of ``out``.
    vals:
        Values to add — ``(len(idx),)`` for 1-D ``out``, ``(len(idx), D)``
        for 2-D.  When ``None``, each index contributes a count of 1
        (``out`` must then have an integer dtype).

    Returns
    -------
    ``out`` (for chaining).
    """
    n = out.shape[0]
    idx = np.asarray(idx)
    if idx.size == 0:
        return out
    if vals is None:
        out += np.bincount(idx, minlength=n)
        return out
    vals = np.asarray(vals)
    if out.ndim == 1:
        out += np.bincount(idx, weights=vals, minlength=n).astype(
            out.dtype, copy=False
        )
        return out
    for k in range(out.shape[1]):
        out[:, k] += np.bincount(idx, weights=vals[:, k], minlength=n).astype(
            out.dtype, copy=False
        )
    return out


def lj_scalar_energy(
    r2: np.ndarray,
    si: Optional[np.ndarray],
    sj: Optional[np.ndarray],
    lj: LJTable,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar LJ force factor and per-pair energy for given pair distances.

    Returns ``(scalar, evec)`` where ``forces_on_i = scalar[:, None] *
    (x_i - x_j)`` and ``evec`` is the unshifted pair potential.  Keeping
    the scalar separate from the vector multiply lets axis-split callers
    (the padded broadcast path) form per-axis force components without
    materializing an ``(M, 3)`` intermediate.

    Single-species tables take a scalar-coefficient shortcut — the hot
    50k-particle workload is single-species, and four ``(M,)`` table
    gathers per batch are pure overhead there.  The shortcut multiplies
    by the exact same float64 coefficient values, so results are
    bit-identical to the gathered form.
    """
    if lj.n_species == 1:
        c14, c8 = lj.c14[0, 0], lj.c8[0, 0]
        c12, c6 = lj.c12[0, 0], lj.c6[0, 0]
    else:
        c14, c8 = lj.c14[si, sj], lj.c8[si, sj]
        c12, c6 = lj.c12[si, sj], lj.c6[si, sj]
    # Horner-style factoring (r^-14 = r^-8 * r^-6 etc.) keeps this at one
    # divide plus nine multiply/subtract passes over the batch.
    inv_r2 = 1.0 / r2
    inv_r4 = inv_r2 * inv_r2
    inv_r6 = inv_r4 * inv_r2
    inv_r8 = inv_r4 * inv_r4
    scalar = c14 * inv_r6
    scalar -= c8
    scalar *= inv_r8
    evec = c12 * inv_r6
    evec -= c6
    evec *= inv_r6
    return scalar, evec


def pair_forces_energy(
    dr: np.ndarray,
    r2: np.ndarray,
    si: np.ndarray,
    sj: np.ndarray,
    lj: LJTable,
    shift_energy: float = 0.0,
) -> Tuple[np.ndarray, float]:
    """Force vectors on i from j, and total pair energy, for given pairs.

    ``dr`` is ``x_i - x_j`` so a *repulsive* (positive) coefficient pushes
    particle i away from j along ``+dr``.  ``shift_energy`` is subtracted
    once per pair (the V(R_c) = 0 energy shift).
    """
    scalar, evec = lj_scalar_energy(r2, si, sj, lj)
    forces = scalar[:, None] * dr
    energy = float(np.sum(evec) - shift_energy * len(r2))
    return forces, energy

"""Pluggable range-limited force fields over the cell-list traversal.

The FASDA architecture treats every RL force as "a scalar function of
r^2 times the displacement vector", which is why its pipelines
generalize beyond LJ (paper Secs. 2.1 and 3.4).  This module provides
the same abstraction on the software side:

* :class:`PairKernel` — the protocol: given displacement blocks, return
  forces and energy;
* :class:`LennardJonesKernel` — Eq. 2 (matches
  :func:`repro.md.reference.compute_forces_cells` exactly);
* :class:`EwaldRealKernel` — the short-range electrostatic term;
* :class:`CompositeKernel` — sums several kernels (LJ + electrostatics
  is the full RL force of paper Sec. 2.1);
* :func:`compute_forces_kernel` — the generic cell-list/half-shell
  driver running any kernel.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.md.cells import CellGrid, CellList
from repro.md.ewald import ewald_real_energy_scalar, ewald_real_scalar
from repro.md.kernels import pair_forces_energy, scatter_add
from repro.md.pairplan import iter_pair_chunks, plan_for_grid
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError


class PairKernel:
    """Protocol for a pairwise range-limited force kernel.

    Subclasses implement :meth:`evaluate` over admitted pair blocks.
    ``dr`` is ``x_i - x_j`` in angstrom; returned forces act on particle
    ``i`` (the caller applies Newton's third law).
    """

    def evaluate(
        self,
        system: ParticleSystem,
        dr: np.ndarray,
        r2: np.ndarray,
        idx_i: np.ndarray,
        idx_j: np.ndarray,
    ) -> Tuple[np.ndarray, float]:
        raise NotImplementedError


class LennardJonesKernel(PairKernel):
    """The LJ force of paper Eqs. 1-2, by species-pair coefficients."""

    def evaluate(self, system, dr, r2, idx_i, idx_j):
        return pair_forces_energy(
            dr,
            r2,
            system.species[idx_i],
            system.species[idx_j],
            system.lj_table,
        )


class EwaldRealKernel(PairKernel):
    """The real-space Ewald electrostatic term (see :mod:`repro.md.ewald`).

    Parameters
    ----------
    beta:
        Ewald splitting parameter in 1/angstrom.
    """

    def __init__(self, beta: float):
        if beta <= 0:
            raise ValidationError("beta must be positive")
        self.beta = float(beta)

    def evaluate(self, system, dr, r2, idx_i, idx_j):
        qq = system.charges[idx_i] * system.charges[idx_j]
        scalar = qq * ewald_real_scalar(r2, self.beta)
        forces = scalar[:, None] * dr
        energy = float(np.sum(qq * ewald_real_energy_scalar(r2, self.beta)))
        return forces, energy


class CompositeKernel(PairKernel):
    """Sum of several kernels — e.g. LJ + short-range electrostatics,
    the complete RL force of paper Sec. 2.1."""

    def __init__(self, kernels: Sequence[PairKernel]):
        if not kernels:
            raise ValidationError("CompositeKernel needs at least one kernel")
        self.kernels: List[PairKernel] = list(kernels)

    def evaluate(self, system, dr, r2, idx_i, idx_j):
        total_f = np.zeros_like(dr)
        total_e = 0.0
        for kernel in self.kernels:
            f, e = kernel.evaluate(system, dr, r2, idx_i, idx_j)
            total_f += f
            total_e += e
        return total_f, total_e


def compute_forces_kernel(
    system: ParticleSystem,
    grid: CellGrid,
    kernel: PairKernel,
) -> Tuple[np.ndarray, float]:
    """Cell-list + half-shell evaluation of any pair kernel.

    Same traversal as the LJ reference (one evaluation per unordered
    pair within the cutoff, forces scattered with Newton's third law);
    the kernel decides the physics.  Pairs are enumerated in step-wide
    batches from the cached pair plan, so arbitrary kernels get the
    same batched hot path as the LJ reference.
    """
    if not np.allclose(grid.box, system.box):
        raise ValidationError("grid box does not match system box")
    cutoff2 = grid.cell_edge ** 2
    pos = system.positions
    forces = np.zeros_like(pos)
    energy = 0.0
    clist = CellList(grid, pos)
    plan = plan_for_grid(grid)

    for chunk in iter_pair_chunks(plan, clist.counts, clist.start, clist.order):
        dr = pos[chunk.ii] - pos[chunk.jj]
        shifted = plan.has_shift[chunk.row]
        if shifted.any():
            dr[shifted] -= plan.shift[chunk.row[shifted]]
        r2 = np.einsum("ij,ij->i", dr, dr)
        mask = r2 < cutoff2
        if not mask.any():
            continue
        gi = chunk.ii[mask]
        gj = chunk.jj[mask]
        f, e = kernel.evaluate(system, dr[mask], r2[mask], gi, gj)
        scatter_add(forces, gi, f)
        scatter_add(forces, gj, -f)
        energy += e
    return forces, energy

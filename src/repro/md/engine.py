"""The double-precision reference MD engine (OpenMM numerical stand-in).

:class:`ReferenceEngine` wires the cell grid, the cell-list force kernel,
and velocity-Verlet into a timestep loop with energy bookkeeping — the
64-bit baseline the paper compares FASDA against in Fig. 19.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.md.cells import CellGrid
from repro.md.cellstate import CellState, engine_pack_fn
from repro.md.integrator import VelocityVerlet
from repro.md.pairplan import plan_for_grid
from repro.md.reference import compute_forces_cells
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError


@dataclass
class EnergyRecord:
    """Per-step energy sample in kcal/mol."""

    step: int
    kinetic: float
    potential: float

    @property
    def total(self) -> float:
        """Total (conserved) energy."""
        return self.kinetic + self.potential


@dataclass
class ReferenceEngine:
    """Cell-list LJ MD in float64.

    Parameters
    ----------
    system:
        The particle system; mutated in place by :meth:`run`.
    grid:
        Cell grid whose edge equals the cutoff radius and whose box
        matches the system box.
    dt_fs:
        Timestep in femtoseconds.
    shift:
        Shift the LJ potential to zero at the cutoff (improves energy
        conservation of the truncated potential; off by default to match
        the paper's plain truncation).
    reuse_state:
        Keep a skin-banded :class:`~repro.md.cellstate.CellState` across
        steps so force passes skip binning and candidate search until a
        particle moves more than skin/2 or changes cell.  Forces (and
        therefore trajectories) are bitwise identical to the default
        rebuild-every-step path; recorded potentials agree to float64
        round-off (the per-offset energy sums run over differently-sized
        arrays).
    reuse_skin:
        Skin margin in angstrom for ``reuse_state``; defaults to
        ``0.15 * cutoff``.
    force_impl:
        Force backend (see :mod:`repro.md.backends`): ``None`` uses the
        process-wide default, ``"numpy"`` the reference numpy paths,
        ``"soa"``/``"numba"``/``"cext"`` the fused flat kernels
        (identical admitted pairs; forces/energy within the documented
        round-off bound; unavailable optional backends fall back to
        ``"numpy"``).
    """

    system: ParticleSystem
    grid: CellGrid
    dt_fs: float = 2.0
    shift: bool = False
    reuse_state: bool = False
    reuse_skin: Optional[float] = None
    force_impl: Optional[str] = None
    history: List[EnergyRecord] = field(default_factory=list)
    _integrator: VelocityVerlet = field(init=False)
    _primed: bool = field(init=False, default=False)
    _prime_recorded: bool = field(init=False, default=False)
    _last_potential: float = field(init=False, default=0.0)
    _cell_state: Optional[CellState] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if not np.allclose(self.grid.box, self.system.box):
            raise ValidationError("grid box must match system box")
        self._integrator = VelocityVerlet(self.dt_fs)

    def ensure_cell_state(self) -> CellState:
        """Create (once) and return the persistent :class:`CellState`.

        Creation does not build the band lists — that happens on the
        next force pass.  Exposed so checkpoint restore can reattach the
        reuse counters before the engine runs again.
        """
        if self._cell_state is None:
            skin = self.reuse_skin
            if skin is None:
                skin = 0.15 * float(self.grid.cell_edge)
            plan = plan_for_grid(self.grid)
            self._cell_state = CellState(
                self.grid, plan, skin, engine_pack_fn(self.grid, plan, skin)
            )
        return self._cell_state

    def _force_fn(self, system: ParticleSystem):
        state = self.ensure_cell_state() if self.reuse_state else None
        return compute_forces_cells(
            system,
            self.grid,
            shift=self.shift,
            state=state,
            force_impl=self.force_impl,
        )

    @property
    def state_builds(self) -> int:
        """Cumulative CellState rebuilds (0 when ``reuse_state`` is off)."""
        return self._cell_state.builds if self._cell_state is not None else 0

    def _prime(self) -> float:
        """Evaluate initial forces once; later calls reuse the record."""
        if not self._primed:
            self._last_potential = self._integrator.prime(self.system, self._force_fn)
            self._primed = True
        return self._last_potential

    def potential_energy(self) -> float:
        """Potential energy of the current configuration.

        On a not-yet-primed engine this doubles as the priming force
        pass — :meth:`run` then reuses the stored record instead of
        re-evaluating the same configuration (historically this cost a
        second identical ``_force_fn`` call).  On a primed engine it
        evaluates fresh (the caller may have perturbed the system) and
        leaves the integrator state untouched.
        """
        if not self._primed:
            return self._prime()
        _, potential = self._force_fn(self.system)
        return potential

    def run(
        self, n_steps: int, record_every: int = 1, start_step: int = 0
    ) -> List[EnergyRecord]:
        """Advance ``n_steps``, appending energy records.

        Returns the records appended by this call.
        """
        if n_steps < 0:
            raise ValidationError("n_steps must be >= 0")
        appended: List[EnergyRecord] = []
        if not self._prime_recorded:
            self._last_potential = self._prime()
            self._prime_recorded = True
            rec = EnergyRecord(start_step, self.system.kinetic_energy(), self._last_potential)
            self.history.append(rec)
            appended.append(rec)
        for i in range(1, n_steps + 1):
            self._last_potential = self._integrator.step(self.system, self._force_fn)
            if record_every and i % record_every == 0:
                rec = EnergyRecord(
                    start_step + i, self.system.kinetic_energy(), self._last_potential
                )
                self.history.append(rec)
                appended.append(rec)
        return appended

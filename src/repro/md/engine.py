"""The double-precision reference MD engine (OpenMM numerical stand-in).

:class:`ReferenceEngine` wires the cell grid, the cell-list force kernel,
and velocity-Verlet into a timestep loop with energy bookkeeping — the
64-bit baseline the paper compares FASDA against in Fig. 19.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.md.cells import CellGrid
from repro.md.integrator import VelocityVerlet
from repro.md.reference import compute_forces_cells
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError


@dataclass
class EnergyRecord:
    """Per-step energy sample in kcal/mol."""

    step: int
    kinetic: float
    potential: float

    @property
    def total(self) -> float:
        """Total (conserved) energy."""
        return self.kinetic + self.potential


@dataclass
class ReferenceEngine:
    """Cell-list LJ MD in float64.

    Parameters
    ----------
    system:
        The particle system; mutated in place by :meth:`run`.
    grid:
        Cell grid whose edge equals the cutoff radius and whose box
        matches the system box.
    dt_fs:
        Timestep in femtoseconds.
    shift:
        Shift the LJ potential to zero at the cutoff (improves energy
        conservation of the truncated potential; off by default to match
        the paper's plain truncation).
    """

    system: ParticleSystem
    grid: CellGrid
    dt_fs: float = 2.0
    shift: bool = False
    history: List[EnergyRecord] = field(default_factory=list)
    _integrator: VelocityVerlet = field(init=False)
    _primed: bool = field(init=False, default=False)
    _last_potential: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if not np.allclose(self.grid.box, self.system.box):
            raise ValidationError("grid box must match system box")
        self._integrator = VelocityVerlet(self.dt_fs)

    def _force_fn(self, system: ParticleSystem):
        return compute_forces_cells(system, self.grid, shift=self.shift)

    def potential_energy(self) -> float:
        """Potential energy of the current configuration (no state change)."""
        _, potential = self._force_fn(self.system)
        return potential

    def run(
        self, n_steps: int, record_every: int = 1, start_step: int = 0
    ) -> List[EnergyRecord]:
        """Advance ``n_steps``, appending energy records.

        Returns the records appended by this call.
        """
        if n_steps < 0:
            raise ValidationError("n_steps must be >= 0")
        appended: List[EnergyRecord] = []
        if not self._primed:
            self._last_potential = self._integrator.prime(self.system, self._force_fn)
            self._primed = True
            rec = EnergyRecord(start_step, self.system.kinetic_energy(), self._last_potential)
            self.history.append(rec)
            appended.append(rec)
        for i in range(1, n_steps + 1):
            self._last_potential = self._integrator.step(self.system, self._force_fn)
            if record_every and i % record_every == 0:
                rec = EnergyRecord(
                    start_step + i, self.system.kinetic_energy(), self._last_potential
                )
                self.history.append(rec)
                appended.append(rec)
        return appended

"""Selectable compiled force backends: ``numpy | soa | numba | cext``.

PR 4's step-persistent cell state left the per-step force *kernel* as
the wall: every hot path still walks the flat band lists with ~25
full-length numpy passes (gathers, displacement, cutoff test, LJ,
bincount scatters).  The FPGA designs this repo reproduces get their
throughput from a single fused filter->force pipeline over SoA particle
buckets; this module gives the software reproduction the same shape — a
flat ``(i_idx, j_idx)`` pair stream driven through one fused
distance-filter + LJ + scatter-accumulate loop — behind a small
registry so the pure-numpy reference paths stay the default and the
oracles.

Backends
--------
``numpy``
    The classic per-offset numpy paths in :mod:`repro.md.reference` and
    :mod:`repro.core.machine` — bitwise-stable, dependency-free, the
    default and the CI-green path.  Selecting it means "no flat kernel":
    consumers keep their existing code.
``soa``
    The flat/SoA restructure in *pure numpy*: one pass over the flat
    index arrays with a conservative float32 prescreen, survivor
    compaction, exact float64 recheck and compacted LJ + scatters.
    Always available; this is the "SoA restructure alone" measurement.
``numba``
    The fused loop JIT-compiled with numba (optional dependency; never
    required).  Falls back to ``numpy`` when numba is not importable.
``cext``
    The fused loop as a tiny C extension built on demand with cffi and
    the system compiler (both optional; never required).  Compiled with
    ``-ffp-contract=off`` so the float32 machine-layer arithmetic is
    bit-for-bit numpy's.  Falls back to ``numpy`` when unavailable.

Kernel contracts (see DESIGN.md §10)
------------------------------------
* ``lj_flat`` (engine layer, float64): fused cutoff test + LJ +
  Newton-pair scatter over a flat pair stream.  Admissions are exact
  (the same float64 ``r2 < cutoff2`` test as the reference), but the
  *accumulation order* differs from the bincount-grouped reference, so
  forces and energy agree to the documented round-off bound
  (:data:`FORCE_ATOL` / :data:`ENERGY_RTOL`) rather than bitwise.
* ``admit_flat`` (machine layer, float32): the band-list admission
  phase of ``FasdaMachine._eval_reuse`` — float32 displacement,
  conservative float32 prescreen, exact float64 recheck of the float32
  diffs, float32 cast, ``r2 < 1`` admission.  Every per-pair operation
  is order-independent and restated with identical rounding, so the
  admitted index stream, r2 values and displacements are **bitwise
  identical** to numpy's; all downstream statistics, traffic and the
  potential energy follow bitwise.
* ``screen_dr`` (chunked/distributed layer, float64): fused gather +
  displacement over one candidate chunk.  The kernel produces ``dr``
  (bitwise identical to the numpy gather/subtract — elementwise, one
  rounding per op); ``r2`` is then computed with the *same*
  ``np.einsum`` as the reference for every backend (einsum's SIMD
  accumulation order is not portably replicable in C), so the values
  feeding :meth:`~repro.core.datapath.PairFilter.admit_r2` — and hence
  every admission — are bitwise identical by construction.
* ``traffic_flat`` (accounting layer, int64 keys): one stable
  group-reduce serving every group-by in
  ``FasdaMachine._account_traffic`` — sorted unique keys with per-key
  float64 weight sums, int64 aux maxima, and first-occurrence row
  indices.  Sums accumulate rows of each key in input order (a stable
  sort by ``key*n + row``), which is exactly ``np.bincount(inv,
  weights)``'s order, so the results are **bitwise identical** to the
  ``np.unique`` + ``bincount`` + ``np.maximum.at`` reference.
* ``ring_charge`` (accounting layer, int64): in-place circular
  range-add of ``counts[k]`` onto the ``hops[k]`` ring links leaving
  ``src[k]`` — the hot loop of
  :meth:`~repro.core.rings.RingLoadModel._charge_spans`.  Pure integer
  adds, order-free, bitwise by construction.

The active default is ``numpy``; override per consumer via their
``force_impl`` knob, globally via :func:`set_force_backend`, or with the
``REPRO_FORCE_IMPL`` environment variable (read at import).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sysconfig
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.md.params import LJTable
from repro.util.errors import ValidationError

#: Documented engine-layer equivalence bounds vs the float64 oracles:
#: compiled/SoA backends admit the exact same pairs but accumulate in a
#: different order, so forces agree to FORCE_ATOL (absolute, kcal/mol/A)
#: and energies to ENERGY_RTOL (relative).  Enforced by
#: tests/test_backends.py and the in-bench asserts of bench_hotpath.
FORCE_ATOL = 1e-8
ENERGY_RTOL = 1e-9

#: Environment variable that selects the process-wide default backend.
ENV_VAR = "REPRO_FORCE_IMPL"


@dataclass
class ForceBackend:
    """One registered force-kernel implementation.

    ``lj_flat`` / ``admit_flat`` / ``screen_dr`` are the three kernel
    entry points (see the module docstring); ``None`` means "use the
    consumer's classic numpy code" (only the ``numpy`` backend does
    this).  ``available`` is probed once at registration; ``why``
    records the probe outcome for diagnostics.
    """

    name: str
    available: bool
    why: str = ""
    lj_flat: Optional[Callable] = None
    admit_flat: Optional[Callable] = None
    screen_dr: Optional[Callable] = None
    #: Segmented variant of ``lj_flat`` for the batched engine: one call
    #: serves K independent systems packed into one global pair stream,
    #: returning a ``(K,)`` per-segment energy vector (see
    #: :mod:`repro.md.batch`).  Present on every available backend —
    #: including ``numpy``, which shares the pure-numpy segmented kernel
    #: with ``soa`` since batching has no "classic per-offset" shape.
    lj_flat_seg: Optional[Callable] = None
    #: Stable group-reduce over int64 keys (accounting layer): see
    #: :func:`traffic_flat_numpy` for the contract.  ``None`` means the
    #: consumer keeps its classic ``np.unique``/``bincount`` code.
    traffic_flat: Optional[Callable] = None
    #: In-place ring link range-add (accounting layer): see
    #: :func:`ring_charge_numpy`.  ``None`` = keep the numpy
    #: difference-array path in :class:`~repro.core.rings.RingLoadModel`.
    ring_charge: Optional[Callable] = None
    #: Fused ROM-pipeline evaluation over the admitted pair stream
    #: (machine layer, float32): section/bin decode from the r2 bit
    #: fields, the twelve coefficient-ROM gathers and the elementwise
    #: force/energy polynomial restated in one loop with numpy's
    #: rounding at every step (``-ffp-contract=off``); fills the
    #: per-pair ``fx/fy/fz/e`` arrays bitwise identical to the numpy
    #: op sequence in ``FasdaMachine._eval_reuse``.  ``None`` = keep
    #: the numpy pipeline (which remains the oracle).
    rom_eval: Optional[Callable] = None
    #: Per-column bank scatter (machine layer): mirrors the
    #: ``bank[:, k] += np.bincount(idx, weights=w_k,
    #: minlength=n).astype(float32)`` sequence — float64 accumulation
    #: in input row order, one float32 rounding per row, a float32 add
    #: onto every bank row (including the +0.0 adds on untouched
    #: rows).  Bitwise identical by construction.  ``None`` = keep the
    #: three-bincount numpy helper.
    scatter_cols: Optional[Callable] = None
    #: True when selecting this backend changes no code path at all.
    is_reference: bool = field(default=False)


_REGISTRY: Dict[str, ForceBackend] = {}
_active: str = "numpy"


def register_backend(backend: ForceBackend) -> ForceBackend:
    """Add a backend to the registry (test hooks use this too)."""
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> List[str]:
    """All registered backend names, available or not."""
    return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Names of the backends whose probe succeeded."""
    return sorted(n for n, b in _REGISTRY.items() if b.available)


def compiled_backends() -> List[str]:
    """Available backends that actually compile the kernel (no numpy)."""
    return [
        n
        for n in ("numba", "cext")
        if n in _REGISTRY and _REGISTRY[n].available
    ]


def backend_status() -> Dict[str, str]:
    """``name -> probe outcome`` for every registered backend."""
    return {
        n: ("available" if b.available else f"unavailable: {b.why}")
        for n, b in sorted(_REGISTRY.items())
    }


def resolve_backend(name: Optional[str] = None) -> ForceBackend:
    """The backend to use for ``force_impl=name``.

    ``None`` resolves to the process-wide active default.  Requesting an
    *unavailable* optional backend (numba not installed, no compiler)
    falls back to the ``numpy`` reference backend rather than failing —
    pure numpy must always work.  Unknown names raise.
    """
    if name is None:
        name = _active
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown force backend {name!r}; registered: {backend_names()}"
        ) from None
    if not backend.available:
        return _REGISTRY["numpy"]
    return backend


def set_force_backend(name: str) -> str:
    """Set the process-wide default backend; returns the *resolved* name.

    Falls back to ``"numpy"`` when the requested optional backend is
    unavailable (mirroring :func:`resolve_backend`), so callers can
    request ``numba`` unconditionally and still run everywhere.
    """
    global _active
    resolved = resolve_backend(name)
    _active = resolved.name
    return _active


def get_force_backend() -> str:
    """The process-wide default backend name."""
    return _active


# ---------------------------------------------------------------------------
# Pure-numpy flat/SoA kernels — the always-available restructure, and the
# reference implementation the compiled kernels mirror.
# ---------------------------------------------------------------------------

def _lj_tables(lj: LJTable) -> Tuple[np.ndarray, ...]:
    return (
        np.ascontiguousarray(lj.c14, dtype=np.float64),
        np.ascontiguousarray(lj.c8, dtype=np.float64),
        np.ascontiguousarray(lj.c12, dtype=np.float64),
        np.ascontiguousarray(lj.c6, dtype=np.float64),
    )


def lj_flat_numpy(
    psx: np.ndarray,
    psy: np.ndarray,
    psz: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    srow: np.ndarray,
    stab: np.ndarray,
    spc: np.ndarray,
    lj: LJTable,
    cutoff2: float,
    shift_e: float,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
) -> float:
    """Flat SoA LJ pass in pure numpy (the ``soa`` backend's ``lj_flat``).

    ``psx/psy/psz`` are contiguous float64 coordinate columns (bucket-
    sorted for the band path, particle-indexed for the chunked path),
    ``ia/ib`` the flat pair stream, ``srow`` a per-pair int32 row into
    the ``(n_rows, 3)`` image-shift table ``stab`` (-1 = no shift).

    One exact float64 cutoff test over the whole flat stream, then a
    compaction so the expensive LJ passes and the six bincount scatters
    only touch *admitted* pairs — on the skin-banded pair lists roughly
    half the stream is beyond the cutoff, which is exactly the work the
    reference path spends on exact-zero contributions to keep its
    bitwise-reproducibility guarantee.  Admissions here are the same
    ``r2 < cutoff2`` float64 test as the reference; only accumulation
    order differs, so forces/energy agree to the documented bound.
    Accumulates into ``fx/fy/fz`` and returns the energy.
    """
    n = len(psx)
    dx = psx.take(ia)
    dx -= psx.take(ib)
    dy = psy.take(ia)
    dy -= psy.take(ib)
    dz = psz.take(ia)
    dz -= psz.take(ib)
    shifted = np.flatnonzero(srow >= 0)
    if shifted.size:
        rows = srow.take(shifted)
        dx[shifted] -= stab[rows, 0]
        dy[shifted] -= stab[rows, 1]
        dz[shifted] -= stab[rows, 2]
    r2 = dx * dx
    tmp = dy * dy
    r2 += tmp
    np.multiply(dz, dz, out=tmp)
    r2 += tmp
    keep = np.flatnonzero(r2 < cutoff2)
    if keep.size == 0:
        return 0.0
    a = ia.take(keep)
    b = ib.take(keep)
    dx = dx.take(keep)
    dy = dy.take(keep)
    dz = dz.take(keep)
    r2 = r2.take(keep)
    from repro.md.kernels import lj_scalar_energy

    if lj.n_species == 1:
        si = sj = None
    else:
        si = spc.take(a)
        sj = spc.take(b)
    scalar, evec = lj_scalar_energy(r2, si, sj, lj)
    energy = float(np.sum(evec)) - shift_e * len(r2)
    w = scalar * dx
    fx += np.bincount(a, weights=w, minlength=n)
    fx -= np.bincount(b, weights=w, minlength=n)
    np.multiply(scalar, dy, out=w)
    fy += np.bincount(a, weights=w, minlength=n)
    fy -= np.bincount(b, weights=w, minlength=n)
    np.multiply(scalar, dz, out=w)
    fz += np.bincount(a, weights=w, minlength=n)
    fz -= np.bincount(b, weights=w, minlength=n)
    return energy


#: Super-chunk budget of the pure-numpy segmented kernel: segments are
#: grouped into spans of at most this many stream rows so the scratch
#: arrays stay ~250 MB even when the whole batch holds 100M+ pairs.
#: Segments are never split across spans, so each particle's bincount
#: accumulation subsequence — and hence its force — is bitwise the same
#: as a single-pass (or solo) evaluation.
DEFAULT_SEG_CHUNK_PAIRS = 4_000_000


def lj_flat_seg_numpy(
    psx: np.ndarray,
    psy: np.ndarray,
    psz: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    srow: np.ndarray,
    stab: np.ndarray,
    spc: np.ndarray,
    lj: LJTable,
    cutoff2: float,
    shift_e: float,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
    seg_lo: np.ndarray,
    seg_hi: np.ndarray,
    target_pairs: int = DEFAULT_SEG_CHUNK_PAIRS,
) -> np.ndarray:
    """Segmented flat LJ pass in pure numpy (``numpy``/``soa`` batched).

    Same arithmetic as :func:`lj_flat_numpy` over the *global* pair
    stream of a :class:`~repro.md.batch.BatchedEngine`, with per-segment
    energies: ``seg_lo[k]:seg_hi[k]`` delimits system ``k``'s live pairs
    in the stream.  The numpy path slices whole contiguous spans — pad
    rows between segments reference the two ghost slots (placed farther
    than the cutoff apart) so the exact float64 cutoff test rejects them
    for free; no pad ever reaches the LJ evaluation or the scatters.

    Per-particle forces are bitwise identical to evaluating each
    segment alone with :func:`lj_flat_numpy`: every elementwise op sees
    the same operands, and a particle's bincount accumulation
    subsequence is exactly its solo stream (its index never appears in
    another segment's pairs).  Per-segment *energies* are reduced with a
    segmented bincount rather than one ``np.sum``, so they agree with
    the solo energy to float64 round-off (:data:`ENERGY_RTOL`), not
    bitwise — the engine-layer bound that already applies across
    backends.  Returns the ``(K,)`` energy vector.
    """
    from repro.md.kernels import lj_scalar_energy

    n = len(psx)
    n_seg = len(seg_lo)
    energies = np.zeros(n_seg, dtype=np.float64)
    s = 0
    while s < n_seg:
        e = s + 1
        lo = int(seg_lo[s])
        while e < n_seg and int(seg_hi[e]) - lo <= target_pairs:
            e += 1
        hi = int(seg_hi[e - 1])
        s_next = e
        if hi == lo:
            s = s_next
            continue
        span = slice(lo, hi)
        ia_c = ia[span]
        ib_c = ib[span]
        srow_c = srow[span]
        dx = psx.take(ia_c)
        dx -= psx.take(ib_c)
        dy = psy.take(ia_c)
        dy -= psy.take(ib_c)
        dz = psz.take(ia_c)
        dz -= psz.take(ib_c)
        shifted = np.flatnonzero(srow_c >= 0)
        if shifted.size:
            rows = srow_c.take(shifted)
            dx[shifted] -= stab[rows, 0]
            dy[shifted] -= stab[rows, 1]
            dz[shifted] -= stab[rows, 2]
        r2 = dx * dx
        tmp = dy * dy
        r2 += tmp
        np.multiply(dz, dz, out=tmp)
        r2 += tmp
        keep = np.flatnonzero(r2 < cutoff2)
        s = s_next
        if keep.size == 0:
            continue
        a = ia_c.take(keep)
        b = ib_c.take(keep)
        dx = dx.take(keep)
        dy = dy.take(keep)
        dz = dz.take(keep)
        r2 = r2.take(keep)
        if lj.n_species == 1:
            si = sj = None
        else:
            si = spc.take(a)
            sj = spc.take(b)
        scalar, evec = lj_scalar_energy(r2, si, sj, lj)
        seg_ids = np.searchsorted(seg_hi, lo + keep, side="right")
        energies += np.bincount(seg_ids, weights=evec, minlength=n_seg)
        energies -= shift_e * np.bincount(seg_ids, minlength=n_seg)
        w = scalar * dx
        fx += np.bincount(a, weights=w, minlength=n)
        fx -= np.bincount(b, weights=w, minlength=n)
        np.multiply(scalar, dy, out=w)
        fy += np.bincount(a, weights=w, minlength=n)
        fy -= np.bincount(b, weights=w, minlength=n)
        np.multiply(scalar, dz, out=w)
        fz += np.bincount(a, weights=w, minlength=n)
        fz -= np.bincount(b, weights=w, minlength=n)
    return energies


def admit_flat_numpy(
    fsx: np.ndarray,
    fsy: np.ndarray,
    fsz: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    segs: np.ndarray,
    offs: np.ndarray,
    scratch: Optional[Tuple[np.ndarray, ...]] = None,
    copy: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Band-list admission phase in numpy (``soa``'s ``admit_flat``).

    Exactly the arithmetic of ``FasdaMachine._eval_reuse``: float32
    fraction differences, per-segment float32 offset subtraction, the
    ``r2 < 1 + 1e-5`` float32 prescreen, the exact float64 recheck of
    the float32 diffs associated ``(dx^2 + dy^2) + dz^2``, the float32
    cast and the ``r2 < 1`` admission.  Returns ``(idx, r2, dx, dy,
    dz)`` — admitted flat band indices (ascending) with their float32
    r2 and displacements.  Bitwise identical to the inline machine code
    and to the compiled kernels.
    """
    L = len(ia)
    if scratch is not None:
        dx, dy, dz, tf, r2s = scratch
    else:
        dx = np.empty(L, dtype=np.float32)
        dy = np.empty(L, dtype=np.float32)
        dz = np.empty(L, dtype=np.float32)
        tf = np.empty(L, dtype=np.float32)
        r2s = np.empty(L, dtype=np.float32)
    np.take(fsx, ia, out=dx)
    np.take(fsx, ib, out=tf)
    dx -= tf
    np.take(fsy, ia, out=dy)
    np.take(fsy, ib, out=tf)
    dy -= tf
    np.take(fsz, ia, out=dz)
    np.take(fsz, ib, out=tf)
    dz -= tf
    n_segs = len(segs) - 1
    for k in range(1, n_segs):
        lo, hi = int(segs[k]), int(segs[k + 1])
        if lo == hi:
            continue
        ox, oy, oz = offs[k]
        if ox:
            dx[lo:hi] -= np.float32(ox)
        if oy:
            dy[lo:hi] -= np.float32(oy)
        if oz:
            dz[lo:hi] -= np.float32(oz)
    np.multiply(dx, dx, out=r2s)
    np.multiply(dy, dy, out=tf)
    r2s += tf
    np.multiply(dz, dz, out=tf)
    r2s += tf
    cand = np.flatnonzero(r2s < np.float32(1.0 + 1e-5))
    empty32 = np.empty(0, dtype=np.float32)
    if cand.size == 0:
        return cand, empty32, empty32, empty32, empty32
    dxc = dx.take(cand)
    dyc = dy.take(cand)
    dzc = dz.take(cand)
    r2c = np.multiply(dxc, dxc, dtype=np.float64)
    t64 = np.multiply(dyc, dyc, dtype=np.float64)
    r2c += t64
    np.multiply(dzc, dzc, out=t64, dtype=np.float64)
    r2c += t64
    r2fc = r2c.astype(np.float32)
    keep = r2fc < np.float32(1.0)
    idx = cand[keep]
    return idx, r2fc[keep], dxc[keep], dyc[keep], dzc[keep]


def screen_dr_numpy(
    frac: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
    offset: np.ndarray,
    row: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Chunk displacement + squared distance in numpy (``soa`` variant).

    ``dr = frac[ii] - frac[jj] - offset[row]`` and its einsum inner
    product, exactly as the chunked machine/distributed paths compute
    them before :meth:`~repro.core.datapath.PairFilter.admit_r2`.
    """
    dr = frac[ii] - frac[jj] - offset[row]
    return dr, _screen_r2(dr)


def _screen_r2(dr: np.ndarray) -> np.ndarray:
    """The reference r2 reduction — shared by *every* backend.

    numpy's einsum accumulates with SIMD partial sums whose order is not
    portably replicable in scalar C, so compiled ``screen_dr`` kernels
    only fuse the gather/displacement (bitwise exact elementwise) and
    delegate the reduction here.  One einsum over identical ``dr``
    values gives identical ``r2`` values for all backends.
    """
    return np.einsum("ij,ij->i", dr, dr)


def traffic_flat_numpy(
    keys: np.ndarray,
    weights: Optional[np.ndarray] = None,
    aux: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray], np.ndarray]:
    """Stable group-reduce over int64 ``keys`` (the traffic oracle).

    Returns ``(uniq, sums, amax, first)``: sorted unique keys; per-key
    float64 sums of ``weights`` accumulated in input-row order (exactly
    ``np.bincount(inv, weights)``'s order — bitwise); per-key int64
    maxima of ``aux``; and the input row index of each key's first
    occurrence (for gathering values that are constant per key).
    ``sums``/``amax`` are ``None`` when the corresponding input is.
    """
    keys = np.asarray(keys, dtype=np.int64)
    uniq, first, inv = np.unique(
        keys, return_index=True, return_inverse=True
    )
    sums = None
    if weights is not None:
        sums = np.bincount(inv, weights=weights, minlength=len(uniq))
    amax = None
    if aux is not None:
        amax = np.full(len(uniq), np.iinfo(np.int64).min, dtype=np.int64)
        np.maximum.at(amax, inv, np.asarray(aux, dtype=np.int64))
    return uniq, sums, amax, first.astype(np.int64, copy=False)


def ring_charge_numpy(
    link_load: np.ndarray,
    direction: int,
    src: np.ndarray,
    hops: np.ndarray,
    counts: np.ndarray,
) -> None:
    """Circular range-add on ``link_load`` (the ring-charge oracle).

    Adds ``counts[k]`` to every link on the ``hops[k]``-link span
    leaving ``src[k]`` in ring ``direction`` — the difference-array +
    cumsum formulation.  Callers pre-filter to ``counts > 0`` and
    ``hops > 0`` rows.  Integer adds: any implementation ordering is
    bitwise identical.
    """
    n = len(link_load)
    first = src if direction == +1 else (src - hops + 1) % n
    end = first + hops
    diff = np.bincount(first, weights=counts, minlength=n + 1)
    diff -= np.bincount(np.minimum(end, n), weights=counts, minlength=n + 1)
    wrap = end > n
    if np.any(wrap):
        cw = counts[wrap]
        diff[0] += cw.sum()
        diff -= np.bincount(end[wrap] - n, weights=cw, minlength=n + 1)
    link_load += np.cumsum(diff[:n]).astype(np.int64)


def _traffic_flat_empty(
    weights: Optional[np.ndarray], aux: Optional[np.ndarray]
) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray], np.ndarray]:
    return (
        np.empty(0, dtype=np.int64),
        None if weights is None else np.empty(0, dtype=np.float64),
        None if aux is None else np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# cext backend: the fused kernels as a tiny cffi-built C extension
# ---------------------------------------------------------------------------

_CDEF = r"""
double lj_flat_f64(const double *px, const double *py, const double *pz,
                   const int64_t *ia, const int64_t *ib,
                   const int32_t *srow, const double *stab,
                   const int32_t *spc, int64_t ns,
                   const double *c14t, const double *c8t,
                   const double *c12t, const double *c6t,
                   int64_t n_pairs, double cutoff2, double shift_e,
                   double *fx, double *fy, double *fz);
void lj_flat_seg_f64(const double *px, const double *py, const double *pz,
                     const int64_t *ia, const int64_t *ib,
                     const int32_t *srow, const double *stab,
                     const int32_t *spc, int64_t ns,
                     const double *c14t, const double *c8t,
                     const double *c12t, const double *c6t,
                     const int64_t *seg_lo, const int64_t *seg_hi,
                     int64_t n_seg, double cutoff2, double shift_e,
                     double *fx, double *fy, double *fz, double *energies);
int64_t admit_flat_f32(const float *fsx, const float *fsy, const float *fsz,
                       const int64_t *ia, const int64_t *ib,
                       const int64_t *segs, int64_t n_segs,
                       const double *offs, float pre,
                       int64_t *idx_out, float *r2_out,
                       float *dx_out, float *dy_out, float *dz_out);
void screen_dr_f64(const double *frac, const int64_t *ii, const int64_t *jj,
                   const double *offs, const int64_t *row, int64_t n,
                   double *dr_out);
int64_t traffic_groupby_i64(int64_t *skey, int64_t n, int64_t div,
                            const double *w, const int64_t *aux,
                            int64_t *uniq_out, double *sum_out,
                            int64_t *max_out, int64_t *first_out);
void ring_charge_i64(int64_t *link_load, int64_t n, int64_t direction,
                     const int64_t *src, const int64_t *hops,
                     const int64_t *counts, int64_t k);
void rom_eval_f32(const float *r2, const float *dx, const float *dy,
                  const float *dz, const int64_t *idx, int64_t m,
                  int64_t bias, int64_t nb, int64_t shift_bits,
                  const float *a14, const float *b14,
                  const float *a8, const float *b8,
                  const float *a12, const float *b12,
                  const float *a6, const float *b6,
                  int scalar_coeffs,
                  const float *c14, const float *c8,
                  const float *c12, const float *c6,
                  const float *af, const float *bf,
                  const float *ae, const float *be, const float *qq,
                  float *fx, float *fy, float *fz, float *e_out);
void scatter_cols_f32(float *bank, const int64_t *idx,
                      const float *wx, const float *wy, const float *wz,
                      int64_t m, int64_t n, double *acc);
"""

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Fused cutoff test + LJ + Newton-pair scatter over a flat pair
 * stream (engine layer, float64).  Sequential accumulation: admitted
 * pairs are exact, totals agree with the bincount-grouped reference to
 * float64 round-off. */
double lj_flat_f64(const double *px, const double *py, const double *pz,
                   const int64_t *ia, const int64_t *ib,
                   const int32_t *srow, const double *stab,
                   const int32_t *spc, int64_t ns,
                   const double *c14t, const double *c8t,
                   const double *c12t, const double *c6t,
                   int64_t n_pairs, double cutoff2, double shift_e,
                   double *fx, double *fy, double *fz)
{
    double energy = 0.0;
    for (int64_t p = 0; p < n_pairs; p++) {
        int64_t i = ia[p], j = ib[p];
        double dx = px[i] - px[j];
        double dy = py[i] - py[j];
        double dz = pz[i] - pz[j];
        int32_t r = srow[p];
        if (r >= 0) {
            dx -= stab[3 * r];
            dy -= stab[3 * r + 1];
            dz -= stab[3 * r + 2];
        }
        double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 >= cutoff2)
            continue;
        int64_t sij = (int64_t)spc[i] * ns + spc[j];
        double inv_r2 = 1.0 / r2;
        double inv_r4 = inv_r2 * inv_r2;
        double inv_r6 = inv_r4 * inv_r2;
        double inv_r8 = inv_r4 * inv_r4;
        double scalar = (c14t[sij] * inv_r6 - c8t[sij]) * inv_r8;
        energy += (c12t[sij] * inv_r6 - c6t[sij]) * inv_r6 - shift_e;
        double fxx = scalar * dx, fyy = scalar * dy, fzz = scalar * dz;
        fx[i] += fxx; fy[i] += fyy; fz[i] += fzz;
        fx[j] -= fxx; fy[j] -= fyy; fz[j] -= fzz;
    }
    return energy;
}

/* Segmented variant of lj_flat_f64 for the batched engine: one call
 * walks K per-system pair ranges of one global stream, accumulating
 * into the shared force columns (particle indices are disjoint across
 * segments) with a per-segment energy accumulator.  Each segment sees
 * exactly the pair order, operands and accumulator start (0.0) of a
 * solo lj_flat_f64 call, so per-system forces AND energies are bitwise
 * the solo run's.  Pad rows between seg_hi[k] and seg_lo[k+1] are
 * never touched. */
void lj_flat_seg_f64(const double *px, const double *py, const double *pz,
                     const int64_t *ia, const int64_t *ib,
                     const int32_t *srow, const double *stab,
                     const int32_t *spc, int64_t ns,
                     const double *c14t, const double *c8t,
                     const double *c12t, const double *c6t,
                     const int64_t *seg_lo, const int64_t *seg_hi,
                     int64_t n_seg, double cutoff2, double shift_e,
                     double *fx, double *fy, double *fz, double *energies)
{
    for (int64_t k = 0; k < n_seg; k++) {
        double energy = 0.0;
        for (int64_t p = seg_lo[k]; p < seg_hi[k]; p++) {
            int64_t i = ia[p], j = ib[p];
            double dx = px[i] - px[j];
            double dy = py[i] - py[j];
            double dz = pz[i] - pz[j];
            int32_t r = srow[p];
            if (r >= 0) {
                dx -= stab[3 * r];
                dy -= stab[3 * r + 1];
                dz -= stab[3 * r + 2];
            }
            double r2 = dx * dx + dy * dy + dz * dz;
            if (r2 >= cutoff2)
                continue;
            int64_t sij = (int64_t)spc[i] * ns + spc[j];
            double inv_r2 = 1.0 / r2;
            double inv_r4 = inv_r2 * inv_r2;
            double inv_r6 = inv_r4 * inv_r2;
            double inv_r8 = inv_r4 * inv_r4;
            double scalar = (c14t[sij] * inv_r6 - c8t[sij]) * inv_r8;
            energy += (c12t[sij] * inv_r6 - c6t[sij]) * inv_r6 - shift_e;
            double fxx = scalar * dx, fyy = scalar * dy, fzz = scalar * dz;
            fx[i] += fxx; fy[i] += fyy; fz[i] += fzz;
            fx[j] -= fxx; fy[j] -= fyy; fz[j] -= fzz;
        }
        energies[k] = energy;
    }
}

/* Band-list admission phase (machine layer).  Compiled with
 * -ffp-contract=off this restates numpy's float32 arithmetic with
 * identical rounding at every step: f32 differences, per-segment f32
 * offset subtraction, the f32 prescreen, the exact f64 recheck of the
 * f32 diffs associated (dx^2 + dy^2) + dz^2 (each product of two
 * floats is exact in double), the f32 cast and the r2 < 1 admission —
 * so the emitted (idx, r2, dx, dy, dz) stream is bitwise numpy's. */
int64_t admit_flat_f32(const float *fsx, const float *fsy, const float *fsz,
                       const int64_t *ia, const int64_t *ib,
                       const int64_t *segs, int64_t n_segs,
                       const double *offs, float pre,
                       int64_t *idx_out, float *r2_out,
                       float *dx_out, float *dy_out, float *dz_out)
{
    int64_t m = 0;
    for (int64_t k = 0; k < n_segs; k++) {
        float ox = (float)offs[3 * k];
        float oy = (float)offs[3 * k + 1];
        float oz = (float)offs[3 * k + 2];
        for (int64_t p = segs[k]; p < segs[k + 1]; p++) {
            float dx = fsx[ia[p]] - fsx[ib[p]];
            float dy = fsy[ia[p]] - fsy[ib[p]];
            float dz = fsz[ia[p]] - fsz[ib[p]];
            if (ox != 0.0f) dx -= ox;
            if (oy != 0.0f) dy -= oy;
            if (oz != 0.0f) dz -= oz;
            float r2s = dx * dx;
            r2s += dy * dy;
            r2s += dz * dz;
            if (r2s < pre) {
                double r2 = (double)dx * (double)dx;
                r2 += (double)dy * (double)dy;
                r2 += (double)dz * (double)dz;
                float r2f = (float)r2;
                if (r2f < 1.0f) {
                    idx_out[m] = p;
                    r2_out[m] = r2f;
                    dx_out[m] = dx;
                    dy_out[m] = dy;
                    dz_out[m] = dz;
                    m++;
                }
            }
        }
    }
    return m;
}

/* Fused gather + displacement over one candidate chunk (chunked
 * machine path, distributed per-node path).  Matches numpy's
 * (frac[ii] - frac[jj]) - offset[row] bitwise — elementwise, one
 * rounding per subtraction.  The r2 reduction is left to the caller's
 * einsum so it is the reference reduction for every backend. */
void screen_dr_f64(const double *frac, const int64_t *ii, const int64_t *jj,
                   const double *offs, const int64_t *row, int64_t n,
                   double *dr_out)
{
    for (int64_t p = 0; p < n; p++) {
        const double *a = frac + 3 * ii[p];
        const double *b = frac + 3 * jj[p];
        const double *o = offs + 3 * row[p];
        dr_out[3 * p] = a[0] - b[0] - o[0];
        dr_out[3 * p + 1] = a[1] - b[1] - o[1];
        dr_out[3 * p + 2] = a[2] - b[2] - o[2];
    }
}

static int cmp_i64(const void *a, const void *b)
{
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* Stable group-reduce over int64 keys (accounting layer).  The caller
 * precomputes skey[i] = key[i] * div + i with div = n, so one plain
 * sort of skey is a stable (key, row) sort; a single walk then emits
 * sorted unique keys, per-key float64 weight sums accumulated in input
 * row order (bitwise np.bincount's accumulation sequence), per-key
 * int64 aux maxima, and the first-occurrence row index.  w/aux may be
 * NULL.  skey is clobbered.  Returns the unique-key count. */
int64_t traffic_groupby_i64(int64_t *skey, int64_t n, int64_t div,
                            const double *w, const int64_t *aux,
                            int64_t *uniq_out, double *sum_out,
                            int64_t *max_out, int64_t *first_out)
{
    if (n == 0)
        return 0;
    qsort(skey, (size_t)n, sizeof(int64_t), cmp_i64);
    int64_t m = -1;
    int64_t prev = -1;  /* keys are non-negative (wrapper-enforced) */
    for (int64_t p = 0; p < n; p++) {
        int64_t key = skey[p] / div;
        int64_t idx = skey[p] % div;
        if (m < 0 || key != prev) {
            m++;
            prev = key;
            uniq_out[m] = key;
            if (w)
                sum_out[m] = 0.0;
            if (aux)
                max_out[m] = aux[idx];
            first_out[m] = idx;
        } else if (aux && aux[idx] > max_out[m]) {
            max_out[m] = aux[idx];
        }
        if (w)
            sum_out[m] += w[idx];
    }
    return m + 1;
}

/* In-place circular range-add (ring-load charging).  Adds counts[p] to
 * the hops[p] links leaving src[p] in ring direction.  Callers
 * pre-filter to counts > 0 && hops > 0; integer adds make any visit
 * order bitwise identical to the numpy difference-array path. */
void ring_charge_i64(int64_t *link_load, int64_t n, int64_t direction,
                     const int64_t *src, const int64_t *hops,
                     const int64_t *counts, int64_t k)
{
    for (int64_t p = 0; p < k; p++) {
        int64_t h = hops[p], c = counts[p];
        int64_t s = src[p];
        if (direction != 1) {
            s = (s - h + 1) % n;
            if (s < 0)
                s += n;
        }
        for (int64_t q = 0; q < h; q++) {
            link_load[s] += c;
            s++;
            if (s == n)
                s = 0;
        }
    }
}

/* Fused ROM-pipeline evaluation over the admitted pair stream (machine
 * layer, float32).  Restates, with -ffp-contract=off so every multiply
 * and add rounds exactly once like the numpy ufunc sequence:
 * the section/bin decode straight from the float32 bit fields
 * (power-of-two n_b only; bias = 127 - n_s, shift_bits =
 * 23 - log2(n_b)), the per-term ROM interpolation a[lin]*r2 + b[lin],
 * the coefficient products (scalar broadcast when scalar_coeffs, else
 * gathered per band index idx[p]), scalar = c14-term - c8-term,
 * f = scalar * d, e = c12-term - c6-term, and the optional Coulomb
 * terms (af/ae NULL-able; qq is the per-band charge product gathered
 * by idx[p]).  Output f/e streams are bitwise numpy's; the
 * order-sensitive per-offset energy sums and bank scatters stay with
 * the caller. */
void rom_eval_f32(const float *r2, const float *dx, const float *dy,
                  const float *dz, const int64_t *idx, int64_t m,
                  int64_t bias, int64_t nb, int64_t shift_bits,
                  const float *a14, const float *b14,
                  const float *a8, const float *b8,
                  const float *a12, const float *b12,
                  const float *a6, const float *b6,
                  int scalar_coeffs,
                  const float *c14, const float *c8,
                  const float *c12, const float *c6,
                  const float *af, const float *bf,
                  const float *ae, const float *be, const float *qq,
                  float *fx, float *fy, float *fz, float *e_out)
{
    for (int64_t p = 0; p < m; p++) {
        float r2a = r2[p];
        int32_t bits;
        memcpy(&bits, &r2a, sizeof bits);
        int64_t lin = ((int64_t)(bits >> 23) - bias) * nb
                      + (int64_t)((bits >> shift_bits) & (int32_t)(nb - 1));
        float inv14 = a14[lin] * r2a + b14[lin];
        float inv8 = a8[lin] * r2a + b8[lin];
        float inv12 = a12[lin] * r2a + b12[lin];
        float inv6 = a6[lin] * r2a + b6[lin];
        float scalar, e;
        if (scalar_coeffs) {
            scalar = inv14 * c14[0];
            inv8 = inv8 * c8[0];
            e = inv12 * c12[0];
            inv6 = inv6 * c6[0];
        } else {
            int64_t q = idx[p];
            scalar = c14[q] * inv14;
            inv8 = inv8 * c8[q];
            e = c12[q] * inv12;
            inv6 = inv6 * c6[q];
        }
        scalar = scalar - inv8;
        e = e - inv6;
        float fxp = scalar * dx[p];
        float fyp = scalar * dy[p];
        float fzp = scalar * dz[p];
        if (qq) {
            float q32 = qq[idx[p]];
            float invf = af[lin] * r2a + bf[lin];
            float sc = invf * q32;
            fxp = fxp + sc * dx[p];
            fyp = fyp + sc * dy[p];
            fzp = fzp + sc * dz[p];
            float inve = ae[lin] * r2a + be[lin];
            inve = inve * q32;
            e = e + inve;
        }
        fx[p] = fxp;
        fy[p] = fyp;
        fz[p] = fzp;
        e_out[p] = e;
    }
}

/* Per-column bank scatter (machine layer).  Mirrors, per column k:
 * bank[:, k] += np.bincount(idx, weights=w_k, minlength=n)
 *                  .astype(float32)
 * i.e. float64 accumulation of the (exactly cast) float32 weights in
 * input row order, one f64 -> f32 rounding per row, then a float32 add
 * onto EVERY bank row — including +0.0 onto untouched rows, which
 * (like numpy's full-length add) turns -0.0 entries into +0.0.  acc is
 * caller-provided scratch of 3*n doubles; bank is C-contiguous
 * (n, 3). */
void scatter_cols_f32(float *bank, const int64_t *idx,
                      const float *wx, const float *wy, const float *wz,
                      int64_t m, int64_t n, double *acc)
{
    for (int64_t i = 0; i < 3 * n; i++)
        acc[i] = 0.0;
    for (int64_t p = 0; p < m; p++) {
        int64_t i = idx[p] * 3;
        acc[i] += (double)wx[p];
        acc[i + 1] += (double)wy[p];
        acc[i + 2] += (double)wz[p];
    }
    for (int64_t i = 0; i < 3 * n; i++)
        bank[i] = bank[i] + (float)acc[i];
}
"""

#: No-FMA, no-fast-math: the float32 machine kernel must round exactly
#: like numpy's elementwise ops.
_C_FLAGS = ["-O2", "-ffp-contract=off", "-fno-fast-math"]


def _build_cext():
    """Build (or load from the on-disk cache) the C kernel module.

    The built extension is keyed by a hash of source + flags in a
    directory under the system temp dir, so repeated processes (test
    runs, campaign pool children) reuse one compilation.  Concurrent
    builders compile into per-pid scratch dirs and install with an
    atomic rename.
    """
    import cffi

    tag = hashlib.sha1(
        (_CDEF + _C_SOURCE + " ".join(_C_FLAGS)).encode()
    ).hexdigest()[:12]
    modname = f"_repro_force_cext_{tag}"
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    cache = os.path.join(tempfile.gettempdir(), "repro-cext-cache")
    final = os.path.join(cache, modname + suffix)
    if not os.path.exists(final):
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        ffi.set_source(modname, _C_SOURCE, extra_compile_args=_C_FLAGS)
        scratch = os.path.join(cache, f"build-{os.getpid()}")
        os.makedirs(scratch, exist_ok=True)
        try:
            so_path = ffi.compile(tmpdir=scratch)
            os.replace(so_path, final)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
    spec = importlib.util.spec_from_file_location(modname, final)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.ffi, mod.lib


def _make_cext_backend() -> ForceBackend:
    try:
        ffi, lib = _build_cext()
    except Exception as exc:  # cffi missing, no compiler, sandboxed tmp...
        return ForceBackend(
            name="cext", available=False, why=f"{type(exc).__name__}: {exc}"
        )

    def ptr(ctype, arr):
        return ffi.cast(ctype, arr.ctypes.data)

    def lj_flat(psx, psy, psz, ia, ib, srow, stab, spc, lj, cutoff2,
                shift_e, fx, fy, fz):
        c14, c8, c12, c6 = _lj_tables(lj)
        return lib.lj_flat_f64(
            ptr("double *", psx), ptr("double *", psy), ptr("double *", psz),
            ptr("int64_t *", ia), ptr("int64_t *", ib),
            ptr("int32_t *", srow), ptr("double *", stab),
            ptr("int32_t *", spc), int(lj.n_species),
            ptr("double *", c14), ptr("double *", c8),
            ptr("double *", c12), ptr("double *", c6),
            int(len(ia)), float(cutoff2), float(shift_e),
            ptr("double *", fx), ptr("double *", fy), ptr("double *", fz),
        )

    def lj_flat_seg(psx, psy, psz, ia, ib, srow, stab, spc, lj, cutoff2,
                    shift_e, fx, fy, fz, seg_lo, seg_hi):
        c14, c8, c12, c6 = _lj_tables(lj)
        lo64 = np.ascontiguousarray(seg_lo, dtype=np.int64)
        hi64 = np.ascontiguousarray(seg_hi, dtype=np.int64)
        energies = np.zeros(len(lo64), dtype=np.float64)
        lib.lj_flat_seg_f64(
            ptr("double *", psx), ptr("double *", psy), ptr("double *", psz),
            ptr("int64_t *", ia), ptr("int64_t *", ib),
            ptr("int32_t *", srow), ptr("double *", stab),
            ptr("int32_t *", spc), int(lj.n_species),
            ptr("double *", c14), ptr("double *", c8),
            ptr("double *", c12), ptr("double *", c6),
            ptr("int64_t *", lo64), ptr("int64_t *", hi64),
            int(len(lo64)), float(cutoff2), float(shift_e),
            ptr("double *", fx), ptr("double *", fy), ptr("double *", fz),
            ptr("double *", energies),
        )
        return energies

    def admit_flat(fsx, fsy, fsz, ia, ib, segs, offs, scratch=None,
                   copy=True):
        L = len(ia)
        if scratch is not None:
            idx_out, r2_out, dx_out, dy_out, dz_out = scratch
        else:
            idx_out = np.empty(L, dtype=np.int64)
            r2_out = np.empty(L, dtype=np.float32)
            dx_out = np.empty(L, dtype=np.float32)
            dy_out = np.empty(L, dtype=np.float32)
            dz_out = np.empty(L, dtype=np.float32)
        segs64 = np.ascontiguousarray(segs, dtype=np.int64)
        offs64 = np.ascontiguousarray(offs, dtype=np.float64)
        m = lib.admit_flat_f32(
            ptr("float *", fsx), ptr("float *", fsy), ptr("float *", fsz),
            ptr("int64_t *", ia), ptr("int64_t *", ib),
            ptr("int64_t *", segs64), int(len(segs64) - 1),
            ptr("double *", offs64), np.float32(1.0 + 1e-5),
            ptr("int64_t *", idx_out), ptr("float *", r2_out),
            ptr("float *", dx_out), ptr("float *", dy_out),
            ptr("float *", dz_out),
        )
        m = int(m)
        if not copy:
            # Views into the caller's scratch: valid until the next
            # admit over the same scratch, which the machine's one-pass
            # consumption respects; spares five compacted-array copies.
            return (
                idx_out[:m], r2_out[:m],
                dx_out[:m], dy_out[:m], dz_out[:m],
            )
        return (
            idx_out[:m].copy(), r2_out[:m].copy(),
            dx_out[:m].copy(), dy_out[:m].copy(), dz_out[:m].copy(),
        )

    def screen_dr(frac, ii, jj, offset, row):
        n = len(ii)
        frac = np.ascontiguousarray(frac, dtype=np.float64)
        offset = np.ascontiguousarray(offset, dtype=np.float64)
        ii = np.ascontiguousarray(ii, dtype=np.int64)
        jj = np.ascontiguousarray(jj, dtype=np.int64)
        row = np.ascontiguousarray(row, dtype=np.int64)
        dr = np.empty((n, 3), dtype=np.float64)
        lib.screen_dr_f64(
            ptr("double *", frac),
            ptr("int64_t *", ii), ptr("int64_t *", jj),
            ptr("double *", offset), ptr("int64_t *", row),
            int(n),
            ptr("double *", dr),
        )
        return dr, _screen_r2(dr)

    def traffic_flat(keys, weights=None, aux=None):
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = len(keys)
        if n == 0:
            return _traffic_flat_empty(weights, aux)
        # The composite skey = key * n + row must fit in int64; the
        # traffic keys are tiny (cell * fpga products), but fall back
        # to the oracle rather than overflow on adversarial inputs.
        if int(keys.min()) < 0 or int(keys.max()) > (2 ** 62) // n:
            return traffic_flat_numpy(keys, weights, aux)
        skey = keys * np.int64(n)
        skey += np.arange(n, dtype=np.int64)
        uniq = np.empty(n, dtype=np.int64)
        first = np.empty(n, dtype=np.int64)
        w64 = sums = a64 = amax = None
        if weights is not None:
            w64 = np.ascontiguousarray(weights, dtype=np.float64)
            sums = np.empty(n, dtype=np.float64)
        if aux is not None:
            a64 = np.ascontiguousarray(aux, dtype=np.int64)
            amax = np.empty(n, dtype=np.int64)
        m = int(
            lib.traffic_groupby_i64(
                ptr("int64_t *", skey), n, n,
                ffi.NULL if w64 is None else ptr("double *", w64),
                ffi.NULL if a64 is None else ptr("int64_t *", a64),
                ptr("int64_t *", uniq),
                ffi.NULL if sums is None else ptr("double *", sums),
                ffi.NULL if amax is None else ptr("int64_t *", amax),
                ptr("int64_t *", first),
            )
        )
        return (
            uniq[:m].copy(),
            None if sums is None else sums[:m].copy(),
            None if amax is None else amax[:m].copy(),
            first[:m].copy(),
        )

    def ring_charge(link_load, direction, src, hops, counts):
        k = len(src)
        if k == 0:
            return
        src = np.ascontiguousarray(src, dtype=np.int64)
        hops = np.ascontiguousarray(hops, dtype=np.int64)
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        lib.ring_charge_i64(
            ptr("int64_t *", link_load), int(len(link_load)),
            int(direction),
            ptr("int64_t *", src), ptr("int64_t *", hops),
            ptr("int64_t *", counts), int(k),
        )

    def rom_eval(r2, dx, dy, dz, idx, n_s, n_b, lj_roms, coeffs, coul,
                 fx, fy, fz, e_out):
        m = int(len(idx))
        if m == 0:
            return
        a14, b14, a8, b8, a12, b12, a6, b6 = lj_roms
        c14, c8, c12, c6 = coeffs
        scalar = np.ndim(c14) == 0
        if scalar:
            c14 = np.asarray([c14], dtype=np.float32)
            c8 = np.asarray([c8], dtype=np.float32)
            c12 = np.asarray([c12], dtype=np.float32)
            c6 = np.asarray([c6], dtype=np.float32)
        if coul is None:
            afp = bfp = aep = bep = qqp = ffi.NULL
        else:
            af, bf, ae, be, qq = coul
            afp, bfp = ptr("float *", af), ptr("float *", bf)
            aep, bep = ptr("float *", ae), ptr("float *", be)
            qqp = ptr("float *", qq)
        shift_bits = 24 - int(n_b).bit_length()
        lib.rom_eval_f32(
            ptr("float *", r2),
            ptr("float *", dx), ptr("float *", dy), ptr("float *", dz),
            ptr("int64_t *", idx), m,
            int(127 - n_s), int(n_b), int(shift_bits),
            ptr("float *", a14), ptr("float *", b14),
            ptr("float *", a8), ptr("float *", b8),
            ptr("float *", a12), ptr("float *", b12),
            ptr("float *", a6), ptr("float *", b6),
            int(scalar),
            ptr("float *", c14), ptr("float *", c8),
            ptr("float *", c12), ptr("float *", c6),
            afp, bfp, aep, bep, qqp,
            ptr("float *", fx), ptr("float *", fy), ptr("float *", fz),
            ptr("float *", e_out),
        )

    def scatter_cols(bank, idx, wx, wy, wz, n, acc):
        m = int(len(idx))
        lib.scatter_cols_f32(
            ptr("float *", bank), ptr("int64_t *", idx),
            ptr("float *", wx), ptr("float *", wy), ptr("float *", wz),
            m, int(n), ptr("double *", acc),
        )

    return ForceBackend(
        name="cext",
        available=True,
        why="compiled with cffi",
        lj_flat=lj_flat,
        admit_flat=admit_flat,
        screen_dr=screen_dr,
        lj_flat_seg=lj_flat_seg,
        traffic_flat=traffic_flat,
        ring_charge=ring_charge,
        rom_eval=rom_eval,
        scatter_cols=scatter_cols,
    )


# ---------------------------------------------------------------------------
# numba backend: the same fused loops, JIT-compiled
# ---------------------------------------------------------------------------


def _make_numba_backend() -> ForceBackend:
    try:
        import numba  # noqa: F401
        from numba import njit
    except Exception as exc:
        return ForceBackend(
            name="numba", available=False, why=f"{type(exc).__name__}: {exc}"
        )

    # Mirrors lj_flat_f64 exactly; numba's default (strict IEEE, no
    # fastmath) keeps the float64 arithmetic identical to C/-O2 with
    # contraction off.
    @njit(cache=True)
    def _lj_flat_jit(px, py, pz, ia, ib, srow, stab, spc, ns,
                     c14t, c8t, c12t, c6t, cutoff2, shift_e, fx, fy, fz):
        energy = 0.0
        for p in range(len(ia)):
            i = ia[p]
            j = ib[p]
            dx = px[i] - px[j]
            dy = py[i] - py[j]
            dz = pz[i] - pz[j]
            r = srow[p]
            if r >= 0:
                dx -= stab[r, 0]
                dy -= stab[r, 1]
                dz -= stab[r, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if r2 >= cutoff2:
                continue
            sij = spc[i] * ns + spc[j]
            inv_r2 = 1.0 / r2
            inv_r4 = inv_r2 * inv_r2
            inv_r6 = inv_r4 * inv_r2
            inv_r8 = inv_r4 * inv_r4
            scalar = (c14t[sij] * inv_r6 - c8t[sij]) * inv_r8
            energy += (c12t[sij] * inv_r6 - c6t[sij]) * inv_r6 - shift_e
            fxx = scalar * dx
            fyy = scalar * dy
            fzz = scalar * dz
            fx[i] += fxx
            fy[i] += fyy
            fz[i] += fzz
            fx[j] -= fxx
            fy[j] -= fyy
            fz[j] -= fzz
        return energy

    # Mirrors lj_flat_seg_f64: per-segment pair ranges, per-segment
    # energy accumulators, shared force columns.
    @njit(cache=True)
    def _lj_flat_seg_jit(px, py, pz, ia, ib, srow, stab, spc, ns,
                         c14t, c8t, c12t, c6t, seg_lo, seg_hi,
                         cutoff2, shift_e, fx, fy, fz, energies):
        for k in range(len(seg_lo)):
            energy = 0.0
            for p in range(seg_lo[k], seg_hi[k]):
                i = ia[p]
                j = ib[p]
                dx = px[i] - px[j]
                dy = py[i] - py[j]
                dz = pz[i] - pz[j]
                r = srow[p]
                if r >= 0:
                    dx -= stab[r, 0]
                    dy -= stab[r, 1]
                    dz -= stab[r, 2]
                r2 = dx * dx + dy * dy + dz * dz
                if r2 >= cutoff2:
                    continue
                sij = spc[i] * ns + spc[j]
                inv_r2 = 1.0 / r2
                inv_r4 = inv_r2 * inv_r2
                inv_r6 = inv_r4 * inv_r2
                inv_r8 = inv_r4 * inv_r4
                scalar = (c14t[sij] * inv_r6 - c8t[sij]) * inv_r8
                energy += (c12t[sij] * inv_r6 - c6t[sij]) * inv_r6 - shift_e
                fxx = scalar * dx
                fyy = scalar * dy
                fzz = scalar * dz
                fx[i] += fxx
                fy[i] += fyy
                fz[i] += fzz
                fx[j] -= fxx
                fy[j] -= fyy
                fz[j] -= fzz
            energies[k] = energy

    @njit(cache=True)
    def _admit_flat_jit(fsx, fsy, fsz, ia, ib, segs, offs, pre,
                        idx_out, r2_out, dx_out, dy_out, dz_out):
        m = 0
        one = np.float32(1.0)
        for k in range(len(segs) - 1):
            ox = np.float32(offs[k, 0])
            oy = np.float32(offs[k, 1])
            oz = np.float32(offs[k, 2])
            for p in range(segs[k], segs[k + 1]):
                dx = fsx[ia[p]] - fsx[ib[p]]
                dy = fsy[ia[p]] - fsy[ib[p]]
                dz = fsz[ia[p]] - fsz[ib[p]]
                if ox != np.float32(0.0):
                    dx -= ox
                if oy != np.float32(0.0):
                    dy -= oy
                if oz != np.float32(0.0):
                    dz -= oz
                r2s = dx * dx
                r2s += dy * dy
                r2s += dz * dz
                if r2s < pre:
                    r2 = np.float64(dx) * np.float64(dx)
                    r2 += np.float64(dy) * np.float64(dy)
                    r2 += np.float64(dz) * np.float64(dz)
                    r2f = np.float32(r2)
                    if r2f < one:
                        idx_out[m] = p
                        r2_out[m] = r2f
                        dx_out[m] = dx
                        dy_out[m] = dy
                        dz_out[m] = dz
                        m += 1
        return m

    @njit(cache=True)
    def _screen_dr_jit(frac, ii, jj, offs, row, dr_out):
        for p in range(len(ii)):
            i = ii[p]
            j = jj[p]
            r = row[p]
            dr_out[p, 0] = frac[i, 0] - frac[j, 0] - offs[r, 0]
            dr_out[p, 1] = frac[i, 1] - frac[j, 1] - offs[r, 1]
            dr_out[p, 2] = frac[i, 2] - frac[j, 2] - offs[r, 2]

    # Mirrors traffic_groupby_i64: walk rows in stable (key, row) order
    # and emit per-key reductions.  Weight sums accumulate each key's
    # rows in input order — np.bincount's sequence, hence bitwise.
    @njit(cache=True)
    def _groupby_jit(order, keys, w, aux, has_w, has_aux,
                     uniq_out, sum_out, max_out, first_out):
        m = -1
        prev = np.int64(-1)
        for p in range(len(order)):
            idx = order[p]
            key = keys[idx]
            if m < 0 or key != prev:
                m += 1
                prev = key
                uniq_out[m] = key
                if has_w:
                    sum_out[m] = 0.0
                if has_aux:
                    max_out[m] = aux[idx]
                first_out[m] = idx
            elif has_aux and aux[idx] > max_out[m]:
                max_out[m] = aux[idx]
            if has_w:
                sum_out[m] += w[idx]
        return m + 1

    # Mirrors rom_eval_f32: decode straight from the precomputed int32
    # bit view, float32 ops in numpy's exact sequence (numba's strict
    # IEEE default emits no FMA contraction).
    @njit(cache=True)
    def _rom_eval_jit(r2, bits, dx, dy, dz, idx, bias, nb, shift_bits,
                      a14, b14, a8, b8, a12, b12, a6, b6,
                      scalar_coeffs, c14, c8, c12, c6,
                      has_coul, af, bf, ae, be, qq,
                      fx, fy, fz, e_out):
        for p in range(len(idx)):
            r2a = r2[p]
            b = np.int64(bits[p])
            lin = ((b >> np.int64(23)) - bias) * nb + (
                (b >> shift_bits) & (nb - np.int64(1))
            )
            inv14 = a14[lin] * r2a + b14[lin]
            inv8 = a8[lin] * r2a + b8[lin]
            inv12 = a12[lin] * r2a + b12[lin]
            inv6 = a6[lin] * r2a + b6[lin]
            if scalar_coeffs:
                scalar = inv14 * c14[0]
                inv8 = inv8 * c8[0]
                e = inv12 * c12[0]
                inv6 = inv6 * c6[0]
            else:
                q = idx[p]
                scalar = c14[q] * inv14
                inv8 = inv8 * c8[q]
                e = c12[q] * inv12
                inv6 = inv6 * c6[q]
            scalar = scalar - inv8
            e = e - inv6
            fxp = scalar * dx[p]
            fyp = scalar * dy[p]
            fzp = scalar * dz[p]
            if has_coul:
                q32 = qq[idx[p]]
                invf = af[lin] * r2a + bf[lin]
                sc = invf * q32
                fxp = fxp + sc * dx[p]
                fyp = fyp + sc * dy[p]
                fzp = fzp + sc * dz[p]
                inve = ae[lin] * r2a + be[lin]
                inve = inve * q32
                e = e + inve
            fx[p] = fxp
            fy[p] = fyp
            fz[p] = fzp
            e_out[p] = e

    # Mirrors scatter_cols_f32: f64 accumulate in input row order, one
    # f32 rounding per row, a full-length f32 add onto the bank.
    @njit(cache=True)
    def _scatter_cols_jit(bank, idx, wx, wy, wz, n, acc):
        for i in range(n):
            acc[i, 0] = 0.0
            acc[i, 1] = 0.0
            acc[i, 2] = 0.0
        for p in range(len(idx)):
            i = idx[p]
            acc[i, 0] += np.float64(wx[p])
            acc[i, 1] += np.float64(wy[p])
            acc[i, 2] += np.float64(wz[p])
        for i in range(n):
            bank[i, 0] = bank[i, 0] + np.float32(acc[i, 0])
            bank[i, 1] = bank[i, 1] + np.float32(acc[i, 1])
            bank[i, 2] = bank[i, 2] + np.float32(acc[i, 2])

    # Mirrors ring_charge_i64: per-record circular link walk; integer
    # adds are order-free so this is bitwise the difference-array path.
    @njit(cache=True)
    def _ring_charge_jit(link_load, direction, src, hops, counts):
        n = len(link_load)
        for p in range(len(src)):
            h = hops[p]
            c = counts[p]
            s = src[p]
            if direction != 1:
                s = (s - h + 1) % n
                if s < 0:
                    s += n
            for _ in range(h):
                link_load[s] += c
                s += 1
                if s == n:
                    s = 0

    def lj_flat(psx, psy, psz, ia, ib, srow, stab, spc, lj, cutoff2,
                shift_e, fx, fy, fz):
        c14, c8, c12, c6 = _lj_tables(lj)
        return float(
            _lj_flat_jit(
                psx, psy, psz, ia, ib, srow, stab,
                spc, np.int64(lj.n_species),
                c14.ravel(), c8.ravel(), c12.ravel(), c6.ravel(),
                float(cutoff2), float(shift_e), fx, fy, fz,
            )
        )

    def lj_flat_seg(psx, psy, psz, ia, ib, srow, stab, spc, lj, cutoff2,
                    shift_e, fx, fy, fz, seg_lo, seg_hi):
        c14, c8, c12, c6 = _lj_tables(lj)
        lo64 = np.ascontiguousarray(seg_lo, dtype=np.int64)
        hi64 = np.ascontiguousarray(seg_hi, dtype=np.int64)
        energies = np.zeros(len(lo64), dtype=np.float64)
        _lj_flat_seg_jit(
            psx, psy, psz, ia, ib, srow, stab,
            spc, np.int64(lj.n_species),
            c14.ravel(), c8.ravel(), c12.ravel(), c6.ravel(),
            lo64, hi64, float(cutoff2), float(shift_e),
            fx, fy, fz, energies,
        )
        return energies

    def admit_flat(fsx, fsy, fsz, ia, ib, segs, offs, scratch=None,
                   copy=True):
        L = len(ia)
        if scratch is not None:
            idx_out, r2_out, dx_out, dy_out, dz_out = scratch
        else:
            idx_out = np.empty(L, dtype=np.int64)
            r2_out = np.empty(L, dtype=np.float32)
            dx_out = np.empty(L, dtype=np.float32)
            dy_out = np.empty(L, dtype=np.float32)
            dz_out = np.empty(L, dtype=np.float32)
        m = int(
            _admit_flat_jit(
                fsx, fsy, fsz, ia, ib,
                np.ascontiguousarray(segs, dtype=np.int64),
                np.ascontiguousarray(offs, dtype=np.float64),
                np.float32(1.0 + 1e-5),
                idx_out, r2_out, dx_out, dy_out, dz_out,
            )
        )
        if not copy:
            return (
                idx_out[:m], r2_out[:m],
                dx_out[:m], dy_out[:m], dz_out[:m],
            )
        return (
            idx_out[:m].copy(), r2_out[:m].copy(),
            dx_out[:m].copy(), dy_out[:m].copy(), dz_out[:m].copy(),
        )

    def screen_dr(frac, ii, jj, offset, row):
        n = len(ii)
        dr = np.empty((n, 3), dtype=np.float64)
        _screen_dr_jit(
            np.ascontiguousarray(frac, dtype=np.float64),
            np.ascontiguousarray(ii, dtype=np.int64),
            np.ascontiguousarray(jj, dtype=np.int64),
            np.ascontiguousarray(offset, dtype=np.float64),
            np.ascontiguousarray(row, dtype=np.int64),
            dr,
        )
        return dr, _screen_r2(dr)

    def traffic_flat(keys, weights=None, aux=None):
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = len(keys)
        if n == 0:
            return _traffic_flat_empty(weights, aux)
        if int(keys.min()) < 0 or int(keys.max()) > (2 ** 62) // n:
            return traffic_flat_numpy(keys, weights, aux)
        skey = keys * np.int64(n)
        skey += np.arange(n, dtype=np.int64)
        order = np.argsort(skey)  # skey is unique: any sort is stable
        has_w = weights is not None
        has_aux = aux is not None
        w64 = (
            np.ascontiguousarray(weights, dtype=np.float64)
            if has_w else np.empty(0, dtype=np.float64)
        )
        a64 = (
            np.ascontiguousarray(aux, dtype=np.int64)
            if has_aux else np.empty(0, dtype=np.int64)
        )
        uniq = np.empty(n, dtype=np.int64)
        first = np.empty(n, dtype=np.int64)
        sums = np.empty(n if has_w else 0, dtype=np.float64)
        amax = np.empty(n if has_aux else 0, dtype=np.int64)
        m = int(
            _groupby_jit(
                order, keys, w64, a64, has_w, has_aux,
                uniq, sums, amax, first,
            )
        )
        return (
            uniq[:m].copy(),
            sums[:m].copy() if has_w else None,
            amax[:m].copy() if has_aux else None,
            first[:m].copy(),
        )

    def ring_charge(link_load, direction, src, hops, counts):
        if len(src) == 0:
            return
        _ring_charge_jit(
            link_load, np.int64(direction),
            np.ascontiguousarray(src, dtype=np.int64),
            np.ascontiguousarray(hops, dtype=np.int64),
            np.ascontiguousarray(counts, dtype=np.int64),
        )

    def rom_eval(r2, dx, dy, dz, idx, n_s, n_b, lj_roms, coeffs, coul,
                 fx, fy, fz, e_out):
        if len(idx) == 0:
            return
        a14, b14, a8, b8, a12, b12, a6, b6 = lj_roms
        c14, c8, c12, c6 = coeffs
        scalar = np.ndim(c14) == 0
        if scalar:
            c14 = np.asarray([c14], dtype=np.float32)
            c8 = np.asarray([c8], dtype=np.float32)
            c12 = np.asarray([c12], dtype=np.float32)
            c6 = np.asarray([c6], dtype=np.float32)
        has_coul = coul is not None
        if has_coul:
            af, bf, ae, be, qq = coul
        else:
            af = bf = ae = be = qq = np.empty(0, dtype=np.float32)
        r2 = np.ascontiguousarray(r2, dtype=np.float32)
        bits = r2.view(np.int32)
        shift_bits = 24 - int(n_b).bit_length()
        _rom_eval_jit(
            r2, bits, dx, dy, dz, idx,
            np.int64(127 - n_s), np.int64(n_b), np.int64(shift_bits),
            a14, b14, a8, b8, a12, b12, a6, b6,
            scalar, c14, c8, c12, c6,
            has_coul, af, bf, ae, be, qq,
            fx, fy, fz, e_out,
        )

    def scatter_cols(bank, idx, wx, wy, wz, n, acc):
        _scatter_cols_jit(
            bank, idx, wx, wy, wz, int(n), acc.reshape(int(n), 3)
        )

    return ForceBackend(
        name="numba",
        available=True,
        why="numba importable",
        lj_flat=lj_flat,
        admit_flat=admit_flat,
        screen_dr=screen_dr,
        lj_flat_seg=lj_flat_seg,
        traffic_flat=traffic_flat,
        ring_charge=ring_charge,
        rom_eval=rom_eval,
        scatter_cols=scatter_cols,
    )


# ---------------------------------------------------------------------------
# Registration and the environment default
# ---------------------------------------------------------------------------

register_backend(
    ForceBackend(
        name="numpy",
        available=True,
        why="reference paths",
        is_reference=True,
        # Batched stepping has no classic per-offset shape, so even the
        # reference backend carries the shared pure-numpy segmented
        # kernel: batched force_impl="numpy" is defined as running it
        # (its per-system solo oracle is force_impl="soa" — see
        # repro.md.batch.solo_oracle_impl).
        lj_flat_seg=lj_flat_seg_numpy,
    )
)
register_backend(
    ForceBackend(
        name="soa",
        available=True,
        why="pure-numpy flat/SoA kernels",
        lj_flat=lj_flat_numpy,
        admit_flat=admit_flat_numpy,
        screen_dr=screen_dr_numpy,
        lj_flat_seg=lj_flat_seg_numpy,
        traffic_flat=traffic_flat_numpy,
        ring_charge=ring_charge_numpy,
    )
)
register_backend(_make_numba_backend())
register_backend(_make_cext_backend())


def _apply_env_default() -> str:
    """Honor ``REPRO_FORCE_IMPL`` (called at import; test hook)."""
    name = os.environ.get(ENV_VAR, "").strip()
    if name:
        try:
            return set_force_backend(name)
        except ValidationError:
            pass  # unknown names in the environment are ignored
    return get_force_backend()


_apply_env_default()

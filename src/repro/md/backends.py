"""Selectable compiled force backends: ``numpy | soa | numba | cext``.

PR 4's step-persistent cell state left the per-step force *kernel* as
the wall: every hot path still walks the flat band lists with ~25
full-length numpy passes (gathers, displacement, cutoff test, LJ,
bincount scatters).  The FPGA designs this repo reproduces get their
throughput from a single fused filter->force pipeline over SoA particle
buckets; this module gives the software reproduction the same shape — a
flat ``(i_idx, j_idx)`` pair stream driven through one fused
distance-filter + LJ + scatter-accumulate loop — behind a small
registry so the pure-numpy reference paths stay the default and the
oracles.

Backends
--------
``numpy``
    The classic per-offset numpy paths in :mod:`repro.md.reference` and
    :mod:`repro.core.machine` — bitwise-stable, dependency-free, the
    default and the CI-green path.  Selecting it means "no flat kernel":
    consumers keep their existing code.
``soa``
    The flat/SoA restructure in *pure numpy*: one pass over the flat
    index arrays with a conservative float32 prescreen, survivor
    compaction, exact float64 recheck and compacted LJ + scatters.
    Always available; this is the "SoA restructure alone" measurement.
``numba``
    The fused loop JIT-compiled with numba (optional dependency; never
    required).  Falls back to ``numpy`` when numba is not importable.
``cext``
    The fused loop as a tiny C extension built on demand with cffi and
    the system compiler (both optional; never required).  Compiled with
    ``-ffp-contract=off`` so the float32 machine-layer arithmetic is
    bit-for-bit numpy's.  Falls back to ``numpy`` when unavailable.

Kernel contracts (see DESIGN.md §10)
------------------------------------
* ``lj_flat`` (engine layer, float64): fused cutoff test + LJ +
  Newton-pair scatter over a flat pair stream.  Admissions are exact
  (the same float64 ``r2 < cutoff2`` test as the reference), but the
  *accumulation order* differs from the bincount-grouped reference, so
  forces and energy agree to the documented round-off bound
  (:data:`FORCE_ATOL` / :data:`ENERGY_RTOL`) rather than bitwise.
* ``admit_flat`` (machine layer, float32): the band-list admission
  phase of ``FasdaMachine._eval_reuse`` — float32 displacement,
  conservative float32 prescreen, exact float64 recheck of the float32
  diffs, float32 cast, ``r2 < 1`` admission.  Every per-pair operation
  is order-independent and restated with identical rounding, so the
  admitted index stream, r2 values and displacements are **bitwise
  identical** to numpy's; all downstream statistics, traffic and the
  potential energy follow bitwise.
* ``screen_dr`` (chunked/distributed layer, float64): fused gather +
  displacement over one candidate chunk.  The kernel produces ``dr``
  (bitwise identical to the numpy gather/subtract — elementwise, one
  rounding per op); ``r2`` is then computed with the *same*
  ``np.einsum`` as the reference for every backend (einsum's SIMD
  accumulation order is not portably replicable in C), so the values
  feeding :meth:`~repro.core.datapath.PairFilter.admit_r2` — and hence
  every admission — are bitwise identical by construction.

The active default is ``numpy``; override per consumer via their
``force_impl`` knob, globally via :func:`set_force_backend`, or with the
``REPRO_FORCE_IMPL`` environment variable (read at import).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sysconfig
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.md.params import LJTable
from repro.util.errors import ValidationError

#: Documented engine-layer equivalence bounds vs the float64 oracles:
#: compiled/SoA backends admit the exact same pairs but accumulate in a
#: different order, so forces agree to FORCE_ATOL (absolute, kcal/mol/A)
#: and energies to ENERGY_RTOL (relative).  Enforced by
#: tests/test_backends.py and the in-bench asserts of bench_hotpath.
FORCE_ATOL = 1e-8
ENERGY_RTOL = 1e-9

#: Environment variable that selects the process-wide default backend.
ENV_VAR = "REPRO_FORCE_IMPL"


@dataclass
class ForceBackend:
    """One registered force-kernel implementation.

    ``lj_flat`` / ``admit_flat`` / ``screen_dr`` are the three kernel
    entry points (see the module docstring); ``None`` means "use the
    consumer's classic numpy code" (only the ``numpy`` backend does
    this).  ``available`` is probed once at registration; ``why``
    records the probe outcome for diagnostics.
    """

    name: str
    available: bool
    why: str = ""
    lj_flat: Optional[Callable] = None
    admit_flat: Optional[Callable] = None
    screen_dr: Optional[Callable] = None
    #: Segmented variant of ``lj_flat`` for the batched engine: one call
    #: serves K independent systems packed into one global pair stream,
    #: returning a ``(K,)`` per-segment energy vector (see
    #: :mod:`repro.md.batch`).  Present on every available backend —
    #: including ``numpy``, which shares the pure-numpy segmented kernel
    #: with ``soa`` since batching has no "classic per-offset" shape.
    lj_flat_seg: Optional[Callable] = None
    #: True when selecting this backend changes no code path at all.
    is_reference: bool = field(default=False)


_REGISTRY: Dict[str, ForceBackend] = {}
_active: str = "numpy"


def register_backend(backend: ForceBackend) -> ForceBackend:
    """Add a backend to the registry (test hooks use this too)."""
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> List[str]:
    """All registered backend names, available or not."""
    return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Names of the backends whose probe succeeded."""
    return sorted(n for n, b in _REGISTRY.items() if b.available)


def compiled_backends() -> List[str]:
    """Available backends that actually compile the kernel (no numpy)."""
    return [
        n
        for n in ("numba", "cext")
        if n in _REGISTRY and _REGISTRY[n].available
    ]


def backend_status() -> Dict[str, str]:
    """``name -> probe outcome`` for every registered backend."""
    return {
        n: ("available" if b.available else f"unavailable: {b.why}")
        for n, b in sorted(_REGISTRY.items())
    }


def resolve_backend(name: Optional[str] = None) -> ForceBackend:
    """The backend to use for ``force_impl=name``.

    ``None`` resolves to the process-wide active default.  Requesting an
    *unavailable* optional backend (numba not installed, no compiler)
    falls back to the ``numpy`` reference backend rather than failing —
    pure numpy must always work.  Unknown names raise.
    """
    if name is None:
        name = _active
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown force backend {name!r}; registered: {backend_names()}"
        ) from None
    if not backend.available:
        return _REGISTRY["numpy"]
    return backend


def set_force_backend(name: str) -> str:
    """Set the process-wide default backend; returns the *resolved* name.

    Falls back to ``"numpy"`` when the requested optional backend is
    unavailable (mirroring :func:`resolve_backend`), so callers can
    request ``numba`` unconditionally and still run everywhere.
    """
    global _active
    resolved = resolve_backend(name)
    _active = resolved.name
    return _active


def get_force_backend() -> str:
    """The process-wide default backend name."""
    return _active


# ---------------------------------------------------------------------------
# Pure-numpy flat/SoA kernels — the always-available restructure, and the
# reference implementation the compiled kernels mirror.
# ---------------------------------------------------------------------------

def _lj_tables(lj: LJTable) -> Tuple[np.ndarray, ...]:
    return (
        np.ascontiguousarray(lj.c14, dtype=np.float64),
        np.ascontiguousarray(lj.c8, dtype=np.float64),
        np.ascontiguousarray(lj.c12, dtype=np.float64),
        np.ascontiguousarray(lj.c6, dtype=np.float64),
    )


def lj_flat_numpy(
    psx: np.ndarray,
    psy: np.ndarray,
    psz: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    srow: np.ndarray,
    stab: np.ndarray,
    spc: np.ndarray,
    lj: LJTable,
    cutoff2: float,
    shift_e: float,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
) -> float:
    """Flat SoA LJ pass in pure numpy (the ``soa`` backend's ``lj_flat``).

    ``psx/psy/psz`` are contiguous float64 coordinate columns (bucket-
    sorted for the band path, particle-indexed for the chunked path),
    ``ia/ib`` the flat pair stream, ``srow`` a per-pair int32 row into
    the ``(n_rows, 3)`` image-shift table ``stab`` (-1 = no shift).

    One exact float64 cutoff test over the whole flat stream, then a
    compaction so the expensive LJ passes and the six bincount scatters
    only touch *admitted* pairs — on the skin-banded pair lists roughly
    half the stream is beyond the cutoff, which is exactly the work the
    reference path spends on exact-zero contributions to keep its
    bitwise-reproducibility guarantee.  Admissions here are the same
    ``r2 < cutoff2`` float64 test as the reference; only accumulation
    order differs, so forces/energy agree to the documented bound.
    Accumulates into ``fx/fy/fz`` and returns the energy.
    """
    n = len(psx)
    dx = psx.take(ia)
    dx -= psx.take(ib)
    dy = psy.take(ia)
    dy -= psy.take(ib)
    dz = psz.take(ia)
    dz -= psz.take(ib)
    shifted = np.flatnonzero(srow >= 0)
    if shifted.size:
        rows = srow.take(shifted)
        dx[shifted] -= stab[rows, 0]
        dy[shifted] -= stab[rows, 1]
        dz[shifted] -= stab[rows, 2]
    r2 = dx * dx
    tmp = dy * dy
    r2 += tmp
    np.multiply(dz, dz, out=tmp)
    r2 += tmp
    keep = np.flatnonzero(r2 < cutoff2)
    if keep.size == 0:
        return 0.0
    a = ia.take(keep)
    b = ib.take(keep)
    dx = dx.take(keep)
    dy = dy.take(keep)
    dz = dz.take(keep)
    r2 = r2.take(keep)
    from repro.md.kernels import lj_scalar_energy

    if lj.n_species == 1:
        si = sj = None
    else:
        si = spc.take(a)
        sj = spc.take(b)
    scalar, evec = lj_scalar_energy(r2, si, sj, lj)
    energy = float(np.sum(evec)) - shift_e * len(r2)
    w = scalar * dx
    fx += np.bincount(a, weights=w, minlength=n)
    fx -= np.bincount(b, weights=w, minlength=n)
    np.multiply(scalar, dy, out=w)
    fy += np.bincount(a, weights=w, minlength=n)
    fy -= np.bincount(b, weights=w, minlength=n)
    np.multiply(scalar, dz, out=w)
    fz += np.bincount(a, weights=w, minlength=n)
    fz -= np.bincount(b, weights=w, minlength=n)
    return energy


#: Super-chunk budget of the pure-numpy segmented kernel: segments are
#: grouped into spans of at most this many stream rows so the scratch
#: arrays stay ~250 MB even when the whole batch holds 100M+ pairs.
#: Segments are never split across spans, so each particle's bincount
#: accumulation subsequence — and hence its force — is bitwise the same
#: as a single-pass (or solo) evaluation.
DEFAULT_SEG_CHUNK_PAIRS = 4_000_000


def lj_flat_seg_numpy(
    psx: np.ndarray,
    psy: np.ndarray,
    psz: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    srow: np.ndarray,
    stab: np.ndarray,
    spc: np.ndarray,
    lj: LJTable,
    cutoff2: float,
    shift_e: float,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
    seg_lo: np.ndarray,
    seg_hi: np.ndarray,
    target_pairs: int = DEFAULT_SEG_CHUNK_PAIRS,
) -> np.ndarray:
    """Segmented flat LJ pass in pure numpy (``numpy``/``soa`` batched).

    Same arithmetic as :func:`lj_flat_numpy` over the *global* pair
    stream of a :class:`~repro.md.batch.BatchedEngine`, with per-segment
    energies: ``seg_lo[k]:seg_hi[k]`` delimits system ``k``'s live pairs
    in the stream.  The numpy path slices whole contiguous spans — pad
    rows between segments reference the two ghost slots (placed farther
    than the cutoff apart) so the exact float64 cutoff test rejects them
    for free; no pad ever reaches the LJ evaluation or the scatters.

    Per-particle forces are bitwise identical to evaluating each
    segment alone with :func:`lj_flat_numpy`: every elementwise op sees
    the same operands, and a particle's bincount accumulation
    subsequence is exactly its solo stream (its index never appears in
    another segment's pairs).  Per-segment *energies* are reduced with a
    segmented bincount rather than one ``np.sum``, so they agree with
    the solo energy to float64 round-off (:data:`ENERGY_RTOL`), not
    bitwise — the engine-layer bound that already applies across
    backends.  Returns the ``(K,)`` energy vector.
    """
    from repro.md.kernels import lj_scalar_energy

    n = len(psx)
    n_seg = len(seg_lo)
    energies = np.zeros(n_seg, dtype=np.float64)
    s = 0
    while s < n_seg:
        e = s + 1
        lo = int(seg_lo[s])
        while e < n_seg and int(seg_hi[e]) - lo <= target_pairs:
            e += 1
        hi = int(seg_hi[e - 1])
        s_next = e
        if hi == lo:
            s = s_next
            continue
        span = slice(lo, hi)
        ia_c = ia[span]
        ib_c = ib[span]
        srow_c = srow[span]
        dx = psx.take(ia_c)
        dx -= psx.take(ib_c)
        dy = psy.take(ia_c)
        dy -= psy.take(ib_c)
        dz = psz.take(ia_c)
        dz -= psz.take(ib_c)
        shifted = np.flatnonzero(srow_c >= 0)
        if shifted.size:
            rows = srow_c.take(shifted)
            dx[shifted] -= stab[rows, 0]
            dy[shifted] -= stab[rows, 1]
            dz[shifted] -= stab[rows, 2]
        r2 = dx * dx
        tmp = dy * dy
        r2 += tmp
        np.multiply(dz, dz, out=tmp)
        r2 += tmp
        keep = np.flatnonzero(r2 < cutoff2)
        s = s_next
        if keep.size == 0:
            continue
        a = ia_c.take(keep)
        b = ib_c.take(keep)
        dx = dx.take(keep)
        dy = dy.take(keep)
        dz = dz.take(keep)
        r2 = r2.take(keep)
        if lj.n_species == 1:
            si = sj = None
        else:
            si = spc.take(a)
            sj = spc.take(b)
        scalar, evec = lj_scalar_energy(r2, si, sj, lj)
        seg_ids = np.searchsorted(seg_hi, lo + keep, side="right")
        energies += np.bincount(seg_ids, weights=evec, minlength=n_seg)
        energies -= shift_e * np.bincount(seg_ids, minlength=n_seg)
        w = scalar * dx
        fx += np.bincount(a, weights=w, minlength=n)
        fx -= np.bincount(b, weights=w, minlength=n)
        np.multiply(scalar, dy, out=w)
        fy += np.bincount(a, weights=w, minlength=n)
        fy -= np.bincount(b, weights=w, minlength=n)
        np.multiply(scalar, dz, out=w)
        fz += np.bincount(a, weights=w, minlength=n)
        fz -= np.bincount(b, weights=w, minlength=n)
    return energies


def admit_flat_numpy(
    fsx: np.ndarray,
    fsy: np.ndarray,
    fsz: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    segs: np.ndarray,
    offs: np.ndarray,
    scratch: Optional[Tuple[np.ndarray, ...]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Band-list admission phase in numpy (``soa``'s ``admit_flat``).

    Exactly the arithmetic of ``FasdaMachine._eval_reuse``: float32
    fraction differences, per-segment float32 offset subtraction, the
    ``r2 < 1 + 1e-5`` float32 prescreen, the exact float64 recheck of
    the float32 diffs associated ``(dx^2 + dy^2) + dz^2``, the float32
    cast and the ``r2 < 1`` admission.  Returns ``(idx, r2, dx, dy,
    dz)`` — admitted flat band indices (ascending) with their float32
    r2 and displacements.  Bitwise identical to the inline machine code
    and to the compiled kernels.
    """
    L = len(ia)
    if scratch is not None:
        dx, dy, dz, tf, r2s = scratch
    else:
        dx = np.empty(L, dtype=np.float32)
        dy = np.empty(L, dtype=np.float32)
        dz = np.empty(L, dtype=np.float32)
        tf = np.empty(L, dtype=np.float32)
        r2s = np.empty(L, dtype=np.float32)
    np.take(fsx, ia, out=dx)
    np.take(fsx, ib, out=tf)
    dx -= tf
    np.take(fsy, ia, out=dy)
    np.take(fsy, ib, out=tf)
    dy -= tf
    np.take(fsz, ia, out=dz)
    np.take(fsz, ib, out=tf)
    dz -= tf
    n_segs = len(segs) - 1
    for k in range(1, n_segs):
        lo, hi = int(segs[k]), int(segs[k + 1])
        if lo == hi:
            continue
        ox, oy, oz = offs[k]
        if ox:
            dx[lo:hi] -= np.float32(ox)
        if oy:
            dy[lo:hi] -= np.float32(oy)
        if oz:
            dz[lo:hi] -= np.float32(oz)
    np.multiply(dx, dx, out=r2s)
    np.multiply(dy, dy, out=tf)
    r2s += tf
    np.multiply(dz, dz, out=tf)
    r2s += tf
    cand = np.flatnonzero(r2s < np.float32(1.0 + 1e-5))
    empty32 = np.empty(0, dtype=np.float32)
    if cand.size == 0:
        return cand, empty32, empty32, empty32, empty32
    dxc = dx.take(cand)
    dyc = dy.take(cand)
    dzc = dz.take(cand)
    r2c = np.multiply(dxc, dxc, dtype=np.float64)
    t64 = np.multiply(dyc, dyc, dtype=np.float64)
    r2c += t64
    np.multiply(dzc, dzc, out=t64, dtype=np.float64)
    r2c += t64
    r2fc = r2c.astype(np.float32)
    keep = r2fc < np.float32(1.0)
    idx = cand[keep]
    return idx, r2fc[keep], dxc[keep], dyc[keep], dzc[keep]


def screen_dr_numpy(
    frac: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
    offset: np.ndarray,
    row: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Chunk displacement + squared distance in numpy (``soa`` variant).

    ``dr = frac[ii] - frac[jj] - offset[row]`` and its einsum inner
    product, exactly as the chunked machine/distributed paths compute
    them before :meth:`~repro.core.datapath.PairFilter.admit_r2`.
    """
    dr = frac[ii] - frac[jj] - offset[row]
    return dr, _screen_r2(dr)


def _screen_r2(dr: np.ndarray) -> np.ndarray:
    """The reference r2 reduction — shared by *every* backend.

    numpy's einsum accumulates with SIMD partial sums whose order is not
    portably replicable in scalar C, so compiled ``screen_dr`` kernels
    only fuse the gather/displacement (bitwise exact elementwise) and
    delegate the reduction here.  One einsum over identical ``dr``
    values gives identical ``r2`` values for all backends.
    """
    return np.einsum("ij,ij->i", dr, dr)


# ---------------------------------------------------------------------------
# cext backend: the fused kernels as a tiny cffi-built C extension
# ---------------------------------------------------------------------------

_CDEF = r"""
double lj_flat_f64(const double *px, const double *py, const double *pz,
                   const int64_t *ia, const int64_t *ib,
                   const int32_t *srow, const double *stab,
                   const int32_t *spc, int64_t ns,
                   const double *c14t, const double *c8t,
                   const double *c12t, const double *c6t,
                   int64_t n_pairs, double cutoff2, double shift_e,
                   double *fx, double *fy, double *fz);
void lj_flat_seg_f64(const double *px, const double *py, const double *pz,
                     const int64_t *ia, const int64_t *ib,
                     const int32_t *srow, const double *stab,
                     const int32_t *spc, int64_t ns,
                     const double *c14t, const double *c8t,
                     const double *c12t, const double *c6t,
                     const int64_t *seg_lo, const int64_t *seg_hi,
                     int64_t n_seg, double cutoff2, double shift_e,
                     double *fx, double *fy, double *fz, double *energies);
int64_t admit_flat_f32(const float *fsx, const float *fsy, const float *fsz,
                       const int64_t *ia, const int64_t *ib,
                       const int64_t *segs, int64_t n_segs,
                       const double *offs, float pre,
                       int64_t *idx_out, float *r2_out,
                       float *dx_out, float *dy_out, float *dz_out);
void screen_dr_f64(const double *frac, const int64_t *ii, const int64_t *jj,
                   const double *offs, const int64_t *row, int64_t n,
                   double *dr_out);
"""

_C_SOURCE = r"""
#include <stdint.h>

/* Fused cutoff test + LJ + Newton-pair scatter over a flat pair
 * stream (engine layer, float64).  Sequential accumulation: admitted
 * pairs are exact, totals agree with the bincount-grouped reference to
 * float64 round-off. */
double lj_flat_f64(const double *px, const double *py, const double *pz,
                   const int64_t *ia, const int64_t *ib,
                   const int32_t *srow, const double *stab,
                   const int32_t *spc, int64_t ns,
                   const double *c14t, const double *c8t,
                   const double *c12t, const double *c6t,
                   int64_t n_pairs, double cutoff2, double shift_e,
                   double *fx, double *fy, double *fz)
{
    double energy = 0.0;
    for (int64_t p = 0; p < n_pairs; p++) {
        int64_t i = ia[p], j = ib[p];
        double dx = px[i] - px[j];
        double dy = py[i] - py[j];
        double dz = pz[i] - pz[j];
        int32_t r = srow[p];
        if (r >= 0) {
            dx -= stab[3 * r];
            dy -= stab[3 * r + 1];
            dz -= stab[3 * r + 2];
        }
        double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 >= cutoff2)
            continue;
        int64_t sij = (int64_t)spc[i] * ns + spc[j];
        double inv_r2 = 1.0 / r2;
        double inv_r4 = inv_r2 * inv_r2;
        double inv_r6 = inv_r4 * inv_r2;
        double inv_r8 = inv_r4 * inv_r4;
        double scalar = (c14t[sij] * inv_r6 - c8t[sij]) * inv_r8;
        energy += (c12t[sij] * inv_r6 - c6t[sij]) * inv_r6 - shift_e;
        double fxx = scalar * dx, fyy = scalar * dy, fzz = scalar * dz;
        fx[i] += fxx; fy[i] += fyy; fz[i] += fzz;
        fx[j] -= fxx; fy[j] -= fyy; fz[j] -= fzz;
    }
    return energy;
}

/* Segmented variant of lj_flat_f64 for the batched engine: one call
 * walks K per-system pair ranges of one global stream, accumulating
 * into the shared force columns (particle indices are disjoint across
 * segments) with a per-segment energy accumulator.  Each segment sees
 * exactly the pair order, operands and accumulator start (0.0) of a
 * solo lj_flat_f64 call, so per-system forces AND energies are bitwise
 * the solo run's.  Pad rows between seg_hi[k] and seg_lo[k+1] are
 * never touched. */
void lj_flat_seg_f64(const double *px, const double *py, const double *pz,
                     const int64_t *ia, const int64_t *ib,
                     const int32_t *srow, const double *stab,
                     const int32_t *spc, int64_t ns,
                     const double *c14t, const double *c8t,
                     const double *c12t, const double *c6t,
                     const int64_t *seg_lo, const int64_t *seg_hi,
                     int64_t n_seg, double cutoff2, double shift_e,
                     double *fx, double *fy, double *fz, double *energies)
{
    for (int64_t k = 0; k < n_seg; k++) {
        double energy = 0.0;
        for (int64_t p = seg_lo[k]; p < seg_hi[k]; p++) {
            int64_t i = ia[p], j = ib[p];
            double dx = px[i] - px[j];
            double dy = py[i] - py[j];
            double dz = pz[i] - pz[j];
            int32_t r = srow[p];
            if (r >= 0) {
                dx -= stab[3 * r];
                dy -= stab[3 * r + 1];
                dz -= stab[3 * r + 2];
            }
            double r2 = dx * dx + dy * dy + dz * dz;
            if (r2 >= cutoff2)
                continue;
            int64_t sij = (int64_t)spc[i] * ns + spc[j];
            double inv_r2 = 1.0 / r2;
            double inv_r4 = inv_r2 * inv_r2;
            double inv_r6 = inv_r4 * inv_r2;
            double inv_r8 = inv_r4 * inv_r4;
            double scalar = (c14t[sij] * inv_r6 - c8t[sij]) * inv_r8;
            energy += (c12t[sij] * inv_r6 - c6t[sij]) * inv_r6 - shift_e;
            double fxx = scalar * dx, fyy = scalar * dy, fzz = scalar * dz;
            fx[i] += fxx; fy[i] += fyy; fz[i] += fzz;
            fx[j] -= fxx; fy[j] -= fyy; fz[j] -= fzz;
        }
        energies[k] = energy;
    }
}

/* Band-list admission phase (machine layer).  Compiled with
 * -ffp-contract=off this restates numpy's float32 arithmetic with
 * identical rounding at every step: f32 differences, per-segment f32
 * offset subtraction, the f32 prescreen, the exact f64 recheck of the
 * f32 diffs associated (dx^2 + dy^2) + dz^2 (each product of two
 * floats is exact in double), the f32 cast and the r2 < 1 admission —
 * so the emitted (idx, r2, dx, dy, dz) stream is bitwise numpy's. */
int64_t admit_flat_f32(const float *fsx, const float *fsy, const float *fsz,
                       const int64_t *ia, const int64_t *ib,
                       const int64_t *segs, int64_t n_segs,
                       const double *offs, float pre,
                       int64_t *idx_out, float *r2_out,
                       float *dx_out, float *dy_out, float *dz_out)
{
    int64_t m = 0;
    for (int64_t k = 0; k < n_segs; k++) {
        float ox = (float)offs[3 * k];
        float oy = (float)offs[3 * k + 1];
        float oz = (float)offs[3 * k + 2];
        for (int64_t p = segs[k]; p < segs[k + 1]; p++) {
            float dx = fsx[ia[p]] - fsx[ib[p]];
            float dy = fsy[ia[p]] - fsy[ib[p]];
            float dz = fsz[ia[p]] - fsz[ib[p]];
            if (ox != 0.0f) dx -= ox;
            if (oy != 0.0f) dy -= oy;
            if (oz != 0.0f) dz -= oz;
            float r2s = dx * dx;
            r2s += dy * dy;
            r2s += dz * dz;
            if (r2s < pre) {
                double r2 = (double)dx * (double)dx;
                r2 += (double)dy * (double)dy;
                r2 += (double)dz * (double)dz;
                float r2f = (float)r2;
                if (r2f < 1.0f) {
                    idx_out[m] = p;
                    r2_out[m] = r2f;
                    dx_out[m] = dx;
                    dy_out[m] = dy;
                    dz_out[m] = dz;
                    m++;
                }
            }
        }
    }
    return m;
}

/* Fused gather + displacement over one candidate chunk (chunked
 * machine path, distributed per-node path).  Matches numpy's
 * (frac[ii] - frac[jj]) - offset[row] bitwise — elementwise, one
 * rounding per subtraction.  The r2 reduction is left to the caller's
 * einsum so it is the reference reduction for every backend. */
void screen_dr_f64(const double *frac, const int64_t *ii, const int64_t *jj,
                   const double *offs, const int64_t *row, int64_t n,
                   double *dr_out)
{
    for (int64_t p = 0; p < n; p++) {
        const double *a = frac + 3 * ii[p];
        const double *b = frac + 3 * jj[p];
        const double *o = offs + 3 * row[p];
        dr_out[3 * p] = a[0] - b[0] - o[0];
        dr_out[3 * p + 1] = a[1] - b[1] - o[1];
        dr_out[3 * p + 2] = a[2] - b[2] - o[2];
    }
}
"""

#: No-FMA, no-fast-math: the float32 machine kernel must round exactly
#: like numpy's elementwise ops.
_C_FLAGS = ["-O2", "-ffp-contract=off", "-fno-fast-math"]


def _build_cext():
    """Build (or load from the on-disk cache) the C kernel module.

    The built extension is keyed by a hash of source + flags in a
    directory under the system temp dir, so repeated processes (test
    runs, campaign pool children) reuse one compilation.  Concurrent
    builders compile into per-pid scratch dirs and install with an
    atomic rename.
    """
    import cffi

    tag = hashlib.sha1(
        (_CDEF + _C_SOURCE + " ".join(_C_FLAGS)).encode()
    ).hexdigest()[:12]
    modname = f"_repro_force_cext_{tag}"
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    cache = os.path.join(tempfile.gettempdir(), "repro-cext-cache")
    final = os.path.join(cache, modname + suffix)
    if not os.path.exists(final):
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        ffi.set_source(modname, _C_SOURCE, extra_compile_args=_C_FLAGS)
        scratch = os.path.join(cache, f"build-{os.getpid()}")
        os.makedirs(scratch, exist_ok=True)
        try:
            so_path = ffi.compile(tmpdir=scratch)
            os.replace(so_path, final)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
    spec = importlib.util.spec_from_file_location(modname, final)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.ffi, mod.lib


def _make_cext_backend() -> ForceBackend:
    try:
        ffi, lib = _build_cext()
    except Exception as exc:  # cffi missing, no compiler, sandboxed tmp...
        return ForceBackend(
            name="cext", available=False, why=f"{type(exc).__name__}: {exc}"
        )

    def ptr(ctype, arr):
        return ffi.cast(ctype, arr.ctypes.data)

    def lj_flat(psx, psy, psz, ia, ib, srow, stab, spc, lj, cutoff2,
                shift_e, fx, fy, fz):
        c14, c8, c12, c6 = _lj_tables(lj)
        return lib.lj_flat_f64(
            ptr("double *", psx), ptr("double *", psy), ptr("double *", psz),
            ptr("int64_t *", ia), ptr("int64_t *", ib),
            ptr("int32_t *", srow), ptr("double *", stab),
            ptr("int32_t *", spc), int(lj.n_species),
            ptr("double *", c14), ptr("double *", c8),
            ptr("double *", c12), ptr("double *", c6),
            int(len(ia)), float(cutoff2), float(shift_e),
            ptr("double *", fx), ptr("double *", fy), ptr("double *", fz),
        )

    def lj_flat_seg(psx, psy, psz, ia, ib, srow, stab, spc, lj, cutoff2,
                    shift_e, fx, fy, fz, seg_lo, seg_hi):
        c14, c8, c12, c6 = _lj_tables(lj)
        lo64 = np.ascontiguousarray(seg_lo, dtype=np.int64)
        hi64 = np.ascontiguousarray(seg_hi, dtype=np.int64)
        energies = np.zeros(len(lo64), dtype=np.float64)
        lib.lj_flat_seg_f64(
            ptr("double *", psx), ptr("double *", psy), ptr("double *", psz),
            ptr("int64_t *", ia), ptr("int64_t *", ib),
            ptr("int32_t *", srow), ptr("double *", stab),
            ptr("int32_t *", spc), int(lj.n_species),
            ptr("double *", c14), ptr("double *", c8),
            ptr("double *", c12), ptr("double *", c6),
            ptr("int64_t *", lo64), ptr("int64_t *", hi64),
            int(len(lo64)), float(cutoff2), float(shift_e),
            ptr("double *", fx), ptr("double *", fy), ptr("double *", fz),
            ptr("double *", energies),
        )
        return energies

    def admit_flat(fsx, fsy, fsz, ia, ib, segs, offs, scratch=None):
        L = len(ia)
        if scratch is not None:
            idx_out, r2_out, dx_out, dy_out, dz_out = scratch
        else:
            idx_out = np.empty(L, dtype=np.int64)
            r2_out = np.empty(L, dtype=np.float32)
            dx_out = np.empty(L, dtype=np.float32)
            dy_out = np.empty(L, dtype=np.float32)
            dz_out = np.empty(L, dtype=np.float32)
        segs64 = np.ascontiguousarray(segs, dtype=np.int64)
        offs64 = np.ascontiguousarray(offs, dtype=np.float64)
        m = lib.admit_flat_f32(
            ptr("float *", fsx), ptr("float *", fsy), ptr("float *", fsz),
            ptr("int64_t *", ia), ptr("int64_t *", ib),
            ptr("int64_t *", segs64), int(len(segs64) - 1),
            ptr("double *", offs64), np.float32(1.0 + 1e-5),
            ptr("int64_t *", idx_out), ptr("float *", r2_out),
            ptr("float *", dx_out), ptr("float *", dy_out),
            ptr("float *", dz_out),
        )
        m = int(m)
        return (
            idx_out[:m].copy(), r2_out[:m].copy(),
            dx_out[:m].copy(), dy_out[:m].copy(), dz_out[:m].copy(),
        )

    def screen_dr(frac, ii, jj, offset, row):
        n = len(ii)
        frac = np.ascontiguousarray(frac, dtype=np.float64)
        offset = np.ascontiguousarray(offset, dtype=np.float64)
        ii = np.ascontiguousarray(ii, dtype=np.int64)
        jj = np.ascontiguousarray(jj, dtype=np.int64)
        row = np.ascontiguousarray(row, dtype=np.int64)
        dr = np.empty((n, 3), dtype=np.float64)
        lib.screen_dr_f64(
            ptr("double *", frac),
            ptr("int64_t *", ii), ptr("int64_t *", jj),
            ptr("double *", offset), ptr("int64_t *", row),
            int(n),
            ptr("double *", dr),
        )
        return dr, _screen_r2(dr)

    return ForceBackend(
        name="cext",
        available=True,
        why="compiled with cffi",
        lj_flat=lj_flat,
        admit_flat=admit_flat,
        screen_dr=screen_dr,
        lj_flat_seg=lj_flat_seg,
    )


# ---------------------------------------------------------------------------
# numba backend: the same fused loops, JIT-compiled
# ---------------------------------------------------------------------------


def _make_numba_backend() -> ForceBackend:
    try:
        import numba  # noqa: F401
        from numba import njit
    except Exception as exc:
        return ForceBackend(
            name="numba", available=False, why=f"{type(exc).__name__}: {exc}"
        )

    # Mirrors lj_flat_f64 exactly; numba's default (strict IEEE, no
    # fastmath) keeps the float64 arithmetic identical to C/-O2 with
    # contraction off.
    @njit(cache=True)
    def _lj_flat_jit(px, py, pz, ia, ib, srow, stab, spc, ns,
                     c14t, c8t, c12t, c6t, cutoff2, shift_e, fx, fy, fz):
        energy = 0.0
        for p in range(len(ia)):
            i = ia[p]
            j = ib[p]
            dx = px[i] - px[j]
            dy = py[i] - py[j]
            dz = pz[i] - pz[j]
            r = srow[p]
            if r >= 0:
                dx -= stab[r, 0]
                dy -= stab[r, 1]
                dz -= stab[r, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if r2 >= cutoff2:
                continue
            sij = spc[i] * ns + spc[j]
            inv_r2 = 1.0 / r2
            inv_r4 = inv_r2 * inv_r2
            inv_r6 = inv_r4 * inv_r2
            inv_r8 = inv_r4 * inv_r4
            scalar = (c14t[sij] * inv_r6 - c8t[sij]) * inv_r8
            energy += (c12t[sij] * inv_r6 - c6t[sij]) * inv_r6 - shift_e
            fxx = scalar * dx
            fyy = scalar * dy
            fzz = scalar * dz
            fx[i] += fxx
            fy[i] += fyy
            fz[i] += fzz
            fx[j] -= fxx
            fy[j] -= fyy
            fz[j] -= fzz
        return energy

    # Mirrors lj_flat_seg_f64: per-segment pair ranges, per-segment
    # energy accumulators, shared force columns.
    @njit(cache=True)
    def _lj_flat_seg_jit(px, py, pz, ia, ib, srow, stab, spc, ns,
                         c14t, c8t, c12t, c6t, seg_lo, seg_hi,
                         cutoff2, shift_e, fx, fy, fz, energies):
        for k in range(len(seg_lo)):
            energy = 0.0
            for p in range(seg_lo[k], seg_hi[k]):
                i = ia[p]
                j = ib[p]
                dx = px[i] - px[j]
                dy = py[i] - py[j]
                dz = pz[i] - pz[j]
                r = srow[p]
                if r >= 0:
                    dx -= stab[r, 0]
                    dy -= stab[r, 1]
                    dz -= stab[r, 2]
                r2 = dx * dx + dy * dy + dz * dz
                if r2 >= cutoff2:
                    continue
                sij = spc[i] * ns + spc[j]
                inv_r2 = 1.0 / r2
                inv_r4 = inv_r2 * inv_r2
                inv_r6 = inv_r4 * inv_r2
                inv_r8 = inv_r4 * inv_r4
                scalar = (c14t[sij] * inv_r6 - c8t[sij]) * inv_r8
                energy += (c12t[sij] * inv_r6 - c6t[sij]) * inv_r6 - shift_e
                fxx = scalar * dx
                fyy = scalar * dy
                fzz = scalar * dz
                fx[i] += fxx
                fy[i] += fyy
                fz[i] += fzz
                fx[j] -= fxx
                fy[j] -= fyy
                fz[j] -= fzz
            energies[k] = energy

    @njit(cache=True)
    def _admit_flat_jit(fsx, fsy, fsz, ia, ib, segs, offs, pre,
                        idx_out, r2_out, dx_out, dy_out, dz_out):
        m = 0
        one = np.float32(1.0)
        for k in range(len(segs) - 1):
            ox = np.float32(offs[k, 0])
            oy = np.float32(offs[k, 1])
            oz = np.float32(offs[k, 2])
            for p in range(segs[k], segs[k + 1]):
                dx = fsx[ia[p]] - fsx[ib[p]]
                dy = fsy[ia[p]] - fsy[ib[p]]
                dz = fsz[ia[p]] - fsz[ib[p]]
                if ox != np.float32(0.0):
                    dx -= ox
                if oy != np.float32(0.0):
                    dy -= oy
                if oz != np.float32(0.0):
                    dz -= oz
                r2s = dx * dx
                r2s += dy * dy
                r2s += dz * dz
                if r2s < pre:
                    r2 = np.float64(dx) * np.float64(dx)
                    r2 += np.float64(dy) * np.float64(dy)
                    r2 += np.float64(dz) * np.float64(dz)
                    r2f = np.float32(r2)
                    if r2f < one:
                        idx_out[m] = p
                        r2_out[m] = r2f
                        dx_out[m] = dx
                        dy_out[m] = dy
                        dz_out[m] = dz
                        m += 1
        return m

    @njit(cache=True)
    def _screen_dr_jit(frac, ii, jj, offs, row, dr_out):
        for p in range(len(ii)):
            i = ii[p]
            j = jj[p]
            r = row[p]
            dr_out[p, 0] = frac[i, 0] - frac[j, 0] - offs[r, 0]
            dr_out[p, 1] = frac[i, 1] - frac[j, 1] - offs[r, 1]
            dr_out[p, 2] = frac[i, 2] - frac[j, 2] - offs[r, 2]

    def lj_flat(psx, psy, psz, ia, ib, srow, stab, spc, lj, cutoff2,
                shift_e, fx, fy, fz):
        c14, c8, c12, c6 = _lj_tables(lj)
        return float(
            _lj_flat_jit(
                psx, psy, psz, ia, ib, srow, stab,
                spc, np.int64(lj.n_species),
                c14.ravel(), c8.ravel(), c12.ravel(), c6.ravel(),
                float(cutoff2), float(shift_e), fx, fy, fz,
            )
        )

    def lj_flat_seg(psx, psy, psz, ia, ib, srow, stab, spc, lj, cutoff2,
                    shift_e, fx, fy, fz, seg_lo, seg_hi):
        c14, c8, c12, c6 = _lj_tables(lj)
        lo64 = np.ascontiguousarray(seg_lo, dtype=np.int64)
        hi64 = np.ascontiguousarray(seg_hi, dtype=np.int64)
        energies = np.zeros(len(lo64), dtype=np.float64)
        _lj_flat_seg_jit(
            psx, psy, psz, ia, ib, srow, stab,
            spc, np.int64(lj.n_species),
            c14.ravel(), c8.ravel(), c12.ravel(), c6.ravel(),
            lo64, hi64, float(cutoff2), float(shift_e),
            fx, fy, fz, energies,
        )
        return energies

    def admit_flat(fsx, fsy, fsz, ia, ib, segs, offs, scratch=None):
        L = len(ia)
        if scratch is not None:
            idx_out, r2_out, dx_out, dy_out, dz_out = scratch
        else:
            idx_out = np.empty(L, dtype=np.int64)
            r2_out = np.empty(L, dtype=np.float32)
            dx_out = np.empty(L, dtype=np.float32)
            dy_out = np.empty(L, dtype=np.float32)
            dz_out = np.empty(L, dtype=np.float32)
        m = int(
            _admit_flat_jit(
                fsx, fsy, fsz, ia, ib,
                np.ascontiguousarray(segs, dtype=np.int64),
                np.ascontiguousarray(offs, dtype=np.float64),
                np.float32(1.0 + 1e-5),
                idx_out, r2_out, dx_out, dy_out, dz_out,
            )
        )
        return (
            idx_out[:m].copy(), r2_out[:m].copy(),
            dx_out[:m].copy(), dy_out[:m].copy(), dz_out[:m].copy(),
        )

    def screen_dr(frac, ii, jj, offset, row):
        n = len(ii)
        dr = np.empty((n, 3), dtype=np.float64)
        _screen_dr_jit(
            np.ascontiguousarray(frac, dtype=np.float64),
            np.ascontiguousarray(ii, dtype=np.int64),
            np.ascontiguousarray(jj, dtype=np.int64),
            np.ascontiguousarray(offset, dtype=np.float64),
            np.ascontiguousarray(row, dtype=np.int64),
            dr,
        )
        return dr, _screen_r2(dr)

    return ForceBackend(
        name="numba",
        available=True,
        why="numba importable",
        lj_flat=lj_flat,
        admit_flat=admit_flat,
        screen_dr=screen_dr,
        lj_flat_seg=lj_flat_seg,
    )


# ---------------------------------------------------------------------------
# Registration and the environment default
# ---------------------------------------------------------------------------

register_backend(
    ForceBackend(
        name="numpy",
        available=True,
        why="reference paths",
        is_reference=True,
        # Batched stepping has no classic per-offset shape, so even the
        # reference backend carries the shared pure-numpy segmented
        # kernel: batched force_impl="numpy" is defined as running it
        # (its per-system solo oracle is force_impl="soa" — see
        # repro.md.batch.solo_oracle_impl).
        lj_flat_seg=lj_flat_seg_numpy,
    )
)
register_backend(
    ForceBackend(
        name="soa",
        available=True,
        why="pure-numpy flat/SoA kernels",
        lj_flat=lj_flat_numpy,
        admit_flat=admit_flat_numpy,
        screen_dr=screen_dr_numpy,
        lj_flat_seg=lj_flat_seg_numpy,
    )
)
register_backend(_make_numba_backend())
register_backend(_make_cext_backend())


def _apply_env_default() -> str:
    """Honor ``REPRO_FORCE_IMPL`` (called at import; test hook)."""
    name = os.environ.get(ENV_VAR, "").strip()
    if name:
        try:
            return set_force_backend(name)
        except ValidationError:
            pass  # unknown names in the environment are ignored
    return get_force_backend()


_apply_env_default()

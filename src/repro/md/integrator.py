"""Velocity-Verlet integration (paper Eqs. 4-6, the red "motion update" path).

The integrator is deliberately engine-agnostic: it advances positions and
velocities given a force callback, so the same code drives both the
double-precision reference engine and the FASDA machine's motion-update
units (which the paper notes consume < 5% of the accelerator's time).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError
from repro.util.units import acceleration_from_force

#: Signature of a force provider: system -> (forces kcal/mol/A, potential kcal/mol).
ForceFn = Callable[[ParticleSystem], Tuple[np.ndarray, float]]


class VelocityVerlet:
    """Velocity-Verlet integrator.

    One :meth:`step` performs::

        x(t+dt) = x(t) + v(t) dt + a(t) dt^2 / 2
        a(t+dt) = F(x(t+dt)) / m
        v(t+dt) = v(t) + (a(t) + a(t+dt)) dt / 2

    which is the standard synchronized form of the paper's Eqs. 4-6.
    ``system.forces`` must hold F(x(t)) on entry (call :meth:`prime`
    before the first step) and holds F(x(t+dt)) on exit, so consecutive
    steps reuse the force evaluation — one force pass per step, exactly
    like the hardware's red/black alternation (paper Fig. 4).

    Parameters
    ----------
    dt_fs:
        Timestep in femtoseconds (the paper uses 2 fs).
    """

    def __init__(self, dt_fs: float):
        if not dt_fs > 0:
            raise ValidationError(f"dt_fs must be positive, got {dt_fs}")
        self.dt = float(dt_fs)

    def prime(self, system: ParticleSystem, force_fn: ForceFn) -> float:
        """Evaluate initial forces; returns the potential energy."""
        forces, potential = force_fn(system)
        system.forces[:] = forces
        return potential

    def step(self, system: ParticleSystem, force_fn: ForceFn) -> float:
        """Advance one timestep in place; returns the new potential energy."""
        dt = self.dt
        accel = acceleration_from_force(system.forces, system.masses)
        system.positions += system.velocities * dt + 0.5 * accel * dt * dt
        system.wrap()
        forces, potential = force_fn(system)
        accel_new = acceleration_from_force(forces, system.masses)
        system.velocities += 0.5 * (accel + accel_new) * dt
        system.forces[:] = forces
        return potential

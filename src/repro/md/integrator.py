"""Velocity-Verlet integration (paper Eqs. 4-6, the red "motion update" path).

The integrator is deliberately engine-agnostic: it advances positions and
velocities given a force callback, so the same code drives both the
double-precision reference engine and the FASDA machine's motion-update
units (which the paper notes consume < 5% of the accelerator's time).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError
from repro.util.units import acceleration_from_force

#: Signature of a force provider: system -> (forces kcal/mol/A, potential kcal/mol).
ForceFn = Callable[[ParticleSystem], Tuple[np.ndarray, float]]


class VelocityVerlet:
    """Velocity-Verlet integrator.

    One :meth:`step` performs::

        x(t+dt) = x(t) + v(t) dt + a(t) dt^2 / 2
        a(t+dt) = F(x(t+dt)) / m
        v(t+dt) = v(t) + (a(t) + a(t+dt)) dt / 2

    which is the standard synchronized form of the paper's Eqs. 4-6.
    ``system.forces`` must hold F(x(t)) on entry (call :meth:`prime`
    before the first step) and holds F(x(t+dt)) on exit, so consecutive
    steps reuse the force evaluation — one force pass per step, exactly
    like the hardware's red/black alternation (paper Fig. 4).

    Parameters
    ----------
    dt_fs:
        Timestep in femtoseconds (the paper uses 2 fs).
    """

    def __init__(self, dt_fs: float):
        if not dt_fs > 0:
            raise ValidationError(f"dt_fs must be positive, got {dt_fs}")
        self.dt = float(dt_fs)

    def prime(self, system: ParticleSystem, force_fn: ForceFn) -> float:
        """Evaluate initial forces; returns the potential energy."""
        forces, potential = force_fn(system)
        system.forces[:] = forces
        return potential

    def drift(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        forces: np.ndarray,
        masses: np.ndarray,
        box: np.ndarray,
    ) -> np.ndarray:
        """Position half-step over raw arrays; returns a(t).

        ``box`` may be the usual ``(3,)`` edge vector or a per-row
        ``(N, 3)`` array — the batched engine passes per-particle box
        rows so one call serves K concatenated systems.  Every
        operation is elementwise, so the result is bitwise identical to
        a per-system call either way.
        """
        dt = self.dt
        accel = acceleration_from_force(forces, masses)
        positions += velocities * dt + 0.5 * accel * dt * dt
        np.mod(positions, box, out=positions)
        return accel

    def kick(
        self,
        velocities: np.ndarray,
        forces_store: np.ndarray,
        forces_new: np.ndarray,
        accel: np.ndarray,
        masses: np.ndarray,
    ) -> None:
        """Velocity half-step over raw arrays.

        ``accel`` is the a(t) returned by :meth:`drift`;
        ``forces_store`` receives F(t+dt) so the next step reuses it.
        Elementwise like :meth:`drift` — one call serves a whole batch.
        """
        accel_new = acceleration_from_force(forces_new, masses)
        velocities += 0.5 * (accel + accel_new) * self.dt
        forces_store[:] = forces_new

    def drift_buffered(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        forces: np.ndarray,
        minv_col: np.ndarray,
        box: np.ndarray,
        accel: np.ndarray,
        b1: np.ndarray,
        b2: np.ndarray,
    ) -> np.ndarray:
        """:meth:`drift` with caller-provided buffers (no temporaries).

        ``minv_col`` must equal ``(KCAL_MOL_TO_INTERNAL / masses)[:, None]``
        (constant per system, so callers cache it).  Every ufunc below is
        the op-for-op sequence Python evaluates in :meth:`drift` — same
        operands, same order, same roundings — so results are bitwise
        identical; only the temporaries are recycled.  The batched
        engine uses this to keep K-system steps allocation-free.

        Contract: on return ``b1`` holds the applied per-row
        displacement ``v dt + a dt^2 / 2`` (pre-wrap).  The batched
        engine's health guard reads it for the max-displacement-per-step
        tripwire, so it costs nothing the drift did not already compute;
        ``b1`` stays valid until the next :meth:`kick_buffered` reuses
        the buffer.
        """
        dt = self.dt
        np.multiply(forces, minv_col, out=accel)  # acceleration_from_force
        np.multiply(velocities, dt, out=b1)
        np.multiply(accel, 0.5, out=b2)
        np.multiply(b2, dt, out=b2)
        np.multiply(b2, dt, out=b2)
        np.add(b1, b2, out=b1)
        np.add(positions, b1, out=positions)
        np.mod(positions, box, out=positions)
        return accel

    def kick_buffered(
        self,
        velocities: np.ndarray,
        forces_store: np.ndarray,
        forces_new: np.ndarray,
        accel: np.ndarray,
        minv_col: np.ndarray,
        b1: np.ndarray,
    ) -> None:
        """:meth:`kick` with caller-provided buffers; bitwise identical
        for the same reason as :meth:`drift_buffered`."""
        np.multiply(forces_new, minv_col, out=b1)  # accel_new
        np.add(accel, b1, out=b1)
        np.multiply(b1, 0.5, out=b1)
        np.multiply(b1, self.dt, out=b1)
        np.add(velocities, b1, out=velocities)
        forces_store[:] = forces_new

    def step(self, system: ParticleSystem, force_fn: ForceFn) -> float:
        """Advance one timestep in place; returns the new potential energy."""
        accel = self.drift(
            system.positions,
            system.velocities,
            system.forces,
            system.masses,
            system.box,
        )
        forces, potential = force_fn(system)
        self.kick(system.velocities, system.forces, forces, accel, system.masses)
        return potential

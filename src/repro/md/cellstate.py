"""Step-persistent cell state: skin-banded pair lists reused across steps.

PR 1 and PR 2 made a *single* force evaluation fast, but every step
still pays the full binning + padded-broadcast candidate search even
when no particle has moved meaningfully.  The paper amortizes exactly
this (cell lists are rebuilt on migration, not every iteration), and
CPU MD engines amortize it with a Verlet skin.  :class:`CellState`
brings that amortization to the cell-list hot paths while keeping the
results **bitwise identical** to the rebuild-every-step code:

* At build time the padded-broadcast matmul search runs once with the
  cutoff *widened by a skin*, producing, per half-shell offset, the flat
  (cell, slot_i, slot_j) candidate list in exactly the order the fresh
  padded path would enumerate its own survivors.
* On reuse steps the candidate matmuls are skipped entirely; the exact
  float64 recheck (or the fixed-point :class:`~repro.core.datapath.PairFilter`
  admission) runs over the persistent band list.  Because every pair the
  fresh path could admit is guaranteed to be in the band (the classic
  skin/2 displacement argument) and the list preserves the fresh path's
  flat enumeration order, the admitted pair *sequences* — and therefore
  every float32/float64 accumulation — are bit-for-bit the same.
* The state is invalidated by the skin/2 displacement criterion (the
  same rule as :meth:`repro.md.neighborlist.VerletNeighborList.needs_rebuild`,
  which now shares :func:`skin_exceeded`) **or** by any change of the
  cell assignment itself: identical binning is what makes the padded
  packing, the bucket order, and hence the accumulation grouping of the
  reuse path equal to a fresh build's.  Box/grid changes force a new
  state object altogether (the state is keyed to one grid).

Consumers attach layer-specific artifacts (pre-gathered coefficient
arrays, pre-cast float32 table ROMs, packed halo batches) via
:attr:`CellState.artifacts`, keyed by :attr:`CellState.version` so a
rebuild invalidates them automatically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.md.cells import CellGrid, CellList, HALF_SHELL_OFFSETS
from repro.md.pairplan import ROWS_PER_CELL, CellPairPlan
from repro.util.errors import ValidationError


def skin_exceeded(
    positions: np.ndarray,
    build_positions: Optional[np.ndarray],
    box: np.ndarray,
    skin: float,
) -> bool:
    """The classic Verlet skin/2 displacement criterion.

    True when any particle moved (minimum-image) more than ``skin / 2``
    since ``build_positions``: two particles each moving skin/2 toward
    one another is the worst case that could bring an unlisted pair
    inside the cutoff.  Shared by the Verlet neighbor list and
    :class:`CellState`.
    """
    if build_positions is None:
        return True
    delta = positions - build_positions
    delta -= box * np.rint(delta / box)
    max_disp2 = float(np.max(np.sum(delta * delta, axis=1)))
    return max_disp2 > (0.5 * skin) ** 2


class BandPairs:
    """Per-offset flat candidate lists of one skin-banded build.

    Attributes
    ----------
    a / b:
        ``(L,)`` int64 global *slot* indices (into the bucket ``order``)
        of the home-side / neighbor-side particle of each candidate.
    c:
        ``(L,)`` int64 evaluating (home) cell id per candidate.
    js:
        ``(L,)`` int64 neighbor-side slot-within-bucket per candidate
        (the padded path's ``j_of`` decode, for presence-bit statistics).
    segs:
        ``ROWS_PER_CELL + 1`` prefix offsets: candidates of offset ``k``
        occupy ``a[segs[k]:segs[k+1]]``, in ascending flat
        ``(cell, slot_i, slot_j)`` order — the exact enumeration order
        of the fresh padded path's ``flatnonzero`` survivors.
    """

    __slots__ = ("a", "b", "c", "js", "segs")

    def __init__(self, a, b, c, js, segs):
        self.a = a
        self.b = b
        self.c = c
        self.js = js
        self.segs = segs

    @property
    def n_pairs(self) -> int:
        return int(self.segs[-1])


def band_slot_pairs(
    plan: CellPairPlan,
    clist: CellList,
    packed: np.ndarray,
    offsets: np.ndarray,
    band: float,
) -> BandPairs:
    """Run the padded-broadcast candidate search once with a widened band.

    ``packed`` is the per-particle 3-vector the consumer's fresh path
    feeds its matmuls (quantized cell fractions for the machine,
    box-local coordinates for the float64 reference); ``offsets`` the
    corresponding per-offset displacement (cell units or angstrom);
    ``band`` the widened squared-distance bound *including* the
    conservative float32 margin.  The returned lists enumerate, per
    offset, every flat (cell, slot_i, slot_j) whose float32 banded
    ``r2`` passes — a superset of anything the fresh path can admit
    while no particle has moved more than skin/2.
    """
    order, start, counts = clist.order, clist.start, clist.counts
    C = plan.n_cells
    cap = int(counts.max())
    n = len(packed)
    packed_s = packed[order]
    within = np.arange(n, dtype=np.int64) - start[clist.sorted_cids]
    P = np.zeros((C, cap, 3), dtype=np.float32)
    P[clist.sorted_cids, within] = packed_s.astype(np.float32)
    padm = np.arange(cap)[None, :] >= counts[:, None]
    S = np.einsum("cix,cix->ci", P, P, dtype=np.float32)
    S[padm] = np.inf

    nbr_mat = plan.nbr.reshape(C, ROWS_PER_CELL)
    band32 = np.float32(band)
    cell_of, i_of, j_of = plan.padded_decode(cap)
    a_of = start[cell_of] + i_of
    iu = np.arange(cap)
    tri = iu[:, None] < iu[None, :]
    mask = np.empty((C, cap, cap), dtype=bool)
    G = np.empty((C, cap, cap), dtype=np.float32)
    H = np.empty((C, cap, cap), dtype=np.float32)

    aa: List[np.ndarray] = []
    bb: List[np.ndarray] = []
    cc: List[np.ndarray] = []
    jj: List[np.ndarray] = []
    segs = np.zeros(ROWS_PER_CELL + 1, dtype=np.int64)
    for k in range(ROWS_PER_CELL):
        nb = nbr_mat[:, k]
        Q = P[nb] + offsets[k].astype(np.float32)
        Sq = np.einsum("cix,cix->ci", Q, Q, dtype=np.float32)
        Sq[padm[nb]] = np.inf
        np.matmul(P, Q.transpose(0, 2, 1), out=G)
        np.add(
            ((S - band32) * np.float32(0.5))[:, :, None],
            (Sq * np.float32(0.5))[:, None, :],
            out=H,
        )
        np.greater(G, H, out=mask)
        if k == 0:
            mask &= tri
        flat = np.flatnonzero(mask.reshape(-1))
        c = cell_of[flat].astype(np.int64)
        js = j_of[flat].astype(np.int64)
        aa.append(a_of[flat])
        bb.append(start[nb][c] + js)
        cc.append(c)
        jj.append(js)
        segs[k + 1] = segs[k] + len(flat)
    return BandPairs(
        np.concatenate(aa),
        np.concatenate(bb),
        np.concatenate(cc),
        np.concatenate(jj),
        segs,
    )


class CellState:
    """Persistent binning + skin-banded candidate lists for one grid.

    Parameters
    ----------
    grid / plan:
        The cell grid and its (cached) half-shell pair plan.
    skin:
        Skin margin in angstrom.  Candidates are listed out to
        ``cutoff + skin``; the state stays valid until some particle
        moves more than ``skin / 2`` (or changes cell).
    pack_fn:
        ``positions -> (packed, offsets, band)``: what the consumer's
        fresh padded path feeds its candidate matmuls (see
        :func:`band_slot_pairs`), with ``band`` already widened to
        ``(cutoff + skin)^2`` *in packed units* plus the conservative
        float32 margin.
    """

    def __init__(
        self,
        grid: CellGrid,
        plan: CellPairPlan,
        skin: float,
        pack_fn: Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray, float]],
    ):
        if skin <= 0:
            raise ValidationError("CellState skin must be > 0")
        self.grid = grid
        self.plan = plan
        self.skin = float(skin)
        self._pack_fn = pack_fn
        self.version = 0
        self.builds = 0
        self.reuse_steps = 0
        self.last_rebuilt = False
        self.clist: Optional[CellList] = None
        self.coords: Optional[np.ndarray] = None
        self.cids: Optional[np.ndarray] = None
        self.cap = 0
        self.pairs: Optional[BandPairs] = None
        self.build_positions: Optional[np.ndarray] = None
        #: Consumer-attached per-build artifacts; cleared on rebuild.
        self.artifacts: Dict[str, object] = {}

    # -- checkpoint metadata ---------------------------------------------------

    def meta(self) -> Dict[str, float]:
        """Reuse metadata for checkpoints — counters, not arrays.

        The band lists themselves are never persisted: a restored
        consumer rebuilds them from positions on its first force pass
        (bitwise-equal to any fresh build), so only the cumulative
        counters need to survive a restart.
        """
        return {
            "skin": self.skin,
            "builds": self.builds,
            "reuse_steps": self.reuse_steps,
            "version": self.version,
        }

    def restore_meta(self, meta: Dict[str, float]) -> None:
        """Continue the cumulative counters of a checkpointed state.

        Restoration costs one rebuild (``build_positions`` starts empty),
        so a restored run's ``builds`` may exceed an uninterrupted run's
        by the number of restarts — the documented, honest cost of a
        restart.
        """
        self.builds = int(meta["builds"])
        self.reuse_steps = int(meta["reuse_steps"])
        self.version = int(meta["version"])

    # -- rebuild criterion -----------------------------------------------------

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """Whether reuse would no longer be bitwise-safe.

        Two triggers, both cheap O(N) passes:

        * the shared skin/2 displacement criterion (:func:`skin_exceeded`)
          — coverage: an unlisted pair could now be inside the cutoff;
        * any change of cell assignment — identity: the padded packing,
          bucket order and accumulation grouping of a fresh build would
          differ from the stored ones, so reuse would stop being
          bit-identical even though it would still be *covering*.
        """
        if self.build_positions is None or self.pairs is None:
            return True
        if skin_exceeded(positions, self.build_positions, self.grid.box, self.skin):
            return True
        coords = self.grid.coords_of_positions(positions)
        cids = self.grid.cell_id(coords)
        if not np.array_equal(cids, self.cids):
            return True
        # Cache the (identical) coords so the consumer's quantization
        # pass does not recompute them.
        self.coords = coords
        return False

    def ensure(self, positions: np.ndarray) -> bool:
        """Rebuild if required; returns True when a rebuild happened."""
        if self.needs_rebuild(positions):
            self.build(positions)
            self.last_rebuilt = True
            return True
        self.reuse_steps += 1
        self.last_rebuilt = False
        return False

    def build(self, positions: np.ndarray) -> None:
        """(Re)build binning and band lists from the current positions.

        Exception-safe: ``pack_fn`` may refuse pathological inputs (the
        reference pack raises ``FloatingPointError`` on non-box-local
        positions), in which case the previously built state is left
        fully intact — the caller falls back to its fresh path.
        """
        clist = CellList(self.grid, positions)
        coords = self.grid.coords_of_positions(positions)
        packed, offsets, band = self._pack_fn(positions)
        pairs = band_slot_pairs(self.plan, clist, packed, offsets, band)
        self.clist = clist
        self.coords = coords
        self.cids = self.grid.cell_id(coords)
        self.cap = int(clist.counts.max()) if clist.counts.size else 0
        self.pairs = pairs
        self.build_positions = positions.copy()
        self.version += 1
        self.builds += 1
        self.artifacts.clear()


def engine_pack_fn(
    grid: CellGrid, plan: CellPairPlan, skin: float
) -> Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray, float]]:
    """``pack_fn`` for the float64 reference path (box-local coordinates).

    Mirrors ``_forces_cells_padded``: packed vectors are box-local
    positions (angstrom), offsets are the half-shell offsets scaled by
    the cell edges, and the band is ``(cutoff + skin)^2`` with the same
    conservative 1e-3 float32 margin the fresh path uses at the cutoff.
    """
    off_len = (
        np.concatenate(
            [np.zeros((1, 3)), np.asarray(HALF_SHELL_OFFSETS, dtype=np.float64)]
        )
        * plan.edges
    )
    listing = float(grid.cell_edge) + float(skin)
    band = listing * listing * (1.0 + 1e-3)

    def pack(positions: np.ndarray):
        cids = np.arange(plan.n_cells, dtype=np.int64)
        corner = plan.edges * plan.cell_coords_of(cids)
        local = positions - corner[grid.cell_id(grid.coords_of_positions(positions))]
        if np.abs(local).max(initial=0.0) > 4.0 * plan.edges.max():
            raise FloatingPointError("positions not box-local")
        return local, off_len, band

    return pack


def machine_pack_fn(
    fmt, cutoff: float, skin: float, grid: CellGrid
) -> Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray, float]]:
    """``pack_fn`` for the fixed-point machine path (cell fractions).

    Mirrors ``FasdaMachine._eval_padded``: packed vectors are quantized
    in-cell fractions (normalized units, cutoff = 1), offsets are the
    integer half-shell offsets, and the band is ``(1 + skin')^2`` with
    the fresh path's 1e-3 float32 margin, ``skin' = skin / cutoff``.
    """
    from repro.core.datapath import quantize_cell_fractions

    offs = np.concatenate(
        [np.zeros((1, 3)), np.asarray(HALF_SHELL_OFFSETS, dtype=np.float64)]
    )
    skin_n = float(skin) / float(cutoff)
    band = (1.0 + skin_n) ** 2 * (1.0 + 1e-3)

    def pack(positions: np.ndarray):
        coords = grid.coords_of_positions(positions)
        frac = quantize_cell_fractions(positions, coords, cutoff, fmt)
        return frac, offs, band

    return pack

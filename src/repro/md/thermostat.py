"""Thermostats for equilibration of the generated datasets.

The paper's dataset starts from random placement, so the first few
hundred steps convert excess potential energy into heat.  For
experiments that want a stationary temperature (e.g. an RDF of a fluid
at a known state point), these thermostats equilibrate the system; the
production (measurement) phase then runs NVE, where Fig. 19's energy
conservation applies.
"""

from __future__ import annotations

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError
from repro.util.units import BOLTZMANN_KCAL_MOL_K, KCAL_MOL_TO_INTERNAL


def _temperature_arrays(velocities: np.ndarray, masses: np.ndarray) -> float:
    """Kinetic temperature from raw arrays.

    Restates :meth:`~repro.md.system.ParticleSystem.temperature` op for
    op (same ``np.sum`` shapes, so numpy's pairwise summation tree is
    identical): applying a thermostat to a contiguous *segment* of a
    batched state produces bitwise the scale factor of the solo system.
    """
    ke_internal = 0.5 * float(
        np.sum(masses * np.sum(velocities ** 2, axis=1))
    )
    kinetic = ke_internal / KCAL_MOL_TO_INTERNAL
    dof = 3 * len(masses)
    return 2.0 * kinetic / (dof * BOLTZMANN_KCAL_MOL_K)


class VelocityRescaleThermostat:
    """Isokinetic rescale: force the kinetic temperature to the target.

    Crude but robust; standard for initial equilibration.
    """

    def __init__(self, target_k: float):
        if target_k <= 0:
            raise ValidationError("target temperature must be positive")
        self.target_k = float(target_k)

    def apply_arrays(self, velocities: np.ndarray, masses: np.ndarray) -> float:
        """Rescale a raw velocity array in place; returns the factor.

        The segmented entry point: the batched engine calls this on
        per-system slices of its concatenated state.
        """
        current = _temperature_arrays(velocities, masses)
        if current <= 0:
            return 1.0
        scale = float(np.sqrt(self.target_k / current))
        velocities *= scale
        return scale

    def apply(self, system: ParticleSystem) -> float:
        """Rescale velocities in place; returns the scale factor used."""
        return self.apply_arrays(system.velocities, system.masses)


class BerendsenThermostat:
    """Weak-coupling thermostat: exponential relaxation toward the target.

    ``lambda^2 = 1 + (dt / tau) (T0 / T - 1)`` per application.  Gentler
    than isokinetic rescale; ``tau >> dt`` leaves dynamics nearly
    untouched.
    """

    def __init__(self, target_k: float, tau_fs: float, dt_fs: float):
        if target_k <= 0 or tau_fs <= 0 or dt_fs <= 0:
            raise ValidationError("target, tau, and dt must be positive")
        if dt_fs > tau_fs:
            raise ValidationError("dt must not exceed the coupling time tau")
        self.target_k = float(target_k)
        self.ratio = float(dt_fs / tau_fs)

    def apply_arrays(self, velocities: np.ndarray, masses: np.ndarray) -> float:
        """Weak-coupling step on a raw velocity array; returns the factor."""
        current = _temperature_arrays(velocities, masses)
        if current <= 0:
            return 1.0
        lam2 = 1.0 + self.ratio * (self.target_k / current - 1.0)
        scale = float(np.sqrt(max(lam2, 0.0)))
        velocities *= scale
        return scale

    def apply(self, system: ParticleSystem) -> float:
        """Scale velocities one weak-coupling step; returns the factor."""
        return self.apply_arrays(system.velocities, system.masses)


def thermostat_meta(thermostat) -> "dict | None":
    """JSON-able description of a thermostat (checkpoint payloads).

    ``None`` passes through (no thermostat on that segment).
    """
    if thermostat is None:
        return None
    if isinstance(thermostat, VelocityRescaleThermostat):
        return {"kind": "rescale", "target_k": thermostat.target_k}
    if isinstance(thermostat, BerendsenThermostat):
        return {
            "kind": "berendsen",
            "target_k": thermostat.target_k,
            "ratio": thermostat.ratio,
        }
    raise ValidationError(
        f"cannot serialize thermostat of type {type(thermostat).__name__}"
    )


def thermostat_from_meta(meta) -> "object | None":
    """Reconstruct a thermostat from :func:`thermostat_meta` exactly.

    Fields are restored verbatim (the Berendsen ``ratio`` is set
    directly rather than re-derived from ``dt/tau``), so a restored
    thermostat produces bitwise the scale factors of the original.
    """
    if meta is None:
        return None
    kind = meta["kind"]
    if kind == "rescale":
        return VelocityRescaleThermostat(float(meta["target_k"]))
    if kind == "berendsen":
        t = BerendsenThermostat.__new__(BerendsenThermostat)
        t.target_k = float(meta["target_k"])
        t.ratio = float(meta["ratio"])
        return t
    raise ValidationError(f"unknown thermostat kind {kind!r}")


def equilibrate(
    engine,
    thermostat,
    n_steps: int,
    apply_every: int = 5,
) -> float:
    """Run an engine with periodic thermostat application.

    Works with any object exposing ``run(n_steps, record_every=0)`` and a
    ``system`` attribute (both :class:`~repro.md.engine.ReferenceEngine`
    and :class:`~repro.core.machine.FasdaMachine` qualify — the machine's
    float32 velocity cache is refreshed from the system).

    Returns the final temperature.
    """
    if n_steps < 0 or apply_every < 1:
        raise ValidationError("n_steps >= 0 and apply_every >= 1 required")
    done = 0
    while done < n_steps:
        chunk = min(apply_every, n_steps - done)
        engine.run(chunk, record_every=0)
        # The machine mirrors velocities in a float32 cache.
        if hasattr(engine, "_velocities32"):
            engine.system.velocities[:] = engine._velocities32.astype(np.float64)
            thermostat.apply(engine.system)
            engine._velocities32 = engine.system.velocities.astype(np.float32)
        else:
            thermostat.apply(engine.system)
        done += chunk
    return engine.system.temperature()

"""Thermostats for equilibration of the generated datasets.

The paper's dataset starts from random placement, so the first few
hundred steps convert excess potential energy into heat.  For
experiments that want a stationary temperature (e.g. an RDF of a fluid
at a known state point), these thermostats equilibrate the system; the
production (measurement) phase then runs NVE, where Fig. 19's energy
conservation applies.
"""

from __future__ import annotations

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError


class VelocityRescaleThermostat:
    """Isokinetic rescale: force the kinetic temperature to the target.

    Crude but robust; standard for initial equilibration.
    """

    def __init__(self, target_k: float):
        if target_k <= 0:
            raise ValidationError("target temperature must be positive")
        self.target_k = float(target_k)

    def apply(self, system: ParticleSystem) -> float:
        """Rescale velocities in place; returns the scale factor used."""
        current = system.temperature()
        if current <= 0:
            return 1.0
        scale = float(np.sqrt(self.target_k / current))
        system.velocities *= scale
        return scale


class BerendsenThermostat:
    """Weak-coupling thermostat: exponential relaxation toward the target.

    ``lambda^2 = 1 + (dt / tau) (T0 / T - 1)`` per application.  Gentler
    than isokinetic rescale; ``tau >> dt`` leaves dynamics nearly
    untouched.
    """

    def __init__(self, target_k: float, tau_fs: float, dt_fs: float):
        if target_k <= 0 or tau_fs <= 0 or dt_fs <= 0:
            raise ValidationError("target, tau, and dt must be positive")
        if dt_fs > tau_fs:
            raise ValidationError("dt must not exceed the coupling time tau")
        self.target_k = float(target_k)
        self.ratio = float(dt_fs / tau_fs)

    def apply(self, system: ParticleSystem) -> float:
        """Scale velocities one weak-coupling step; returns the factor."""
        current = system.temperature()
        if current <= 0:
            return 1.0
        lam2 = 1.0 + self.ratio * (self.target_k / current - 1.0)
        scale = float(np.sqrt(max(lam2, 0.0)))
        system.velocities *= scale
        return scale


def equilibrate(
    engine,
    thermostat,
    n_steps: int,
    apply_every: int = 5,
) -> float:
    """Run an engine with periodic thermostat application.

    Works with any object exposing ``run(n_steps, record_every=0)`` and a
    ``system`` attribute (both :class:`~repro.md.engine.ReferenceEngine`
    and :class:`~repro.core.machine.FasdaMachine` qualify — the machine's
    float32 velocity cache is refreshed from the system).

    Returns the final temperature.
    """
    if n_steps < 0 or apply_every < 1:
        raise ValidationError("n_steps >= 0 and apply_every >= 1 required")
    done = 0
    while done < n_steps:
        chunk = min(apply_every, n_steps - done)
        engine.run(chunk, record_every=0)
        # The machine mirrors velocities in a float32 cache.
        if hasattr(engine, "_velocities32"):
            engine.system.velocities[:] = engine._velocities32.astype(np.float64)
            thermostat.apply(engine.system)
            engine._velocities32 = engine.system.velocities.astype(np.float32)
        else:
            thermostat.apply(engine.system)
        done += chunk
    return engine.system.temperature()

"""Verlet neighbor lists with a skin margin — the CPU-style alternative.

Paper Sec. 2.2 notes that FPGA implementations of RL recompute neighbor
relations every timestep, so "the usual benefit for having a margin does
not apply."  CPU/GPU MD engines *do* use the margin: pairs within
``cutoff + skin`` are listed once and reused until some particle has
moved more than ``skin / 2``, amortizing list construction over many
steps.  This module provides that machinery so the trade-off the paper
alludes to can actually be measured (see the neighbor-list tests and
the reference-engine integration).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError


class VerletNeighborList:
    """A half (i < j, each pair once) Verlet list with displacement tracking.

    Parameters
    ----------
    cutoff:
        Interaction cutoff in angstrom.
    skin:
        Extra margin; pairs within ``cutoff + skin`` are listed.
    box:
        Periodic box edges.
    """

    def __init__(self, cutoff: float, skin: float, box: np.ndarray):
        if cutoff <= 0 or skin < 0:
            raise ValidationError("cutoff must be > 0 and skin >= 0")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.box = np.asarray(box, dtype=np.float64)
        if np.any(self.box < 2 * (cutoff + skin)):
            raise ValidationError(
                "box too small for cutoff + skin under minimum image"
            )
        self._pairs_i: Optional[np.ndarray] = None
        self._pairs_j: Optional[np.ndarray] = None
        self._build_positions: Optional[np.ndarray] = None
        self.builds = 0

    @property
    def list_cutoff(self) -> float:
        """The listing radius (cutoff + skin)."""
        return self.cutoff + self.skin

    def build(self, positions: np.ndarray) -> None:
        """(Re)build the pair list from scratch via an O(N^2) sweep.

        Production codes bucket with cells first; correctness, not list
        build speed, is what these experiments measure, and the O(N^2)
        sweep keeps the code obviously right.
        """
        n = len(positions)
        ii, jj = np.triu_indices(n, k=1)
        dr = positions[ii] - positions[jj]
        dr -= self.box * np.rint(dr / self.box)
        r2 = np.sum(dr * dr, axis=1)
        mask = r2 < self.list_cutoff ** 2
        self._pairs_i = ii[mask]
        self._pairs_j = jj[mask]
        self._build_positions = positions.copy()
        self.builds += 1

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """True when any particle moved more than skin/2 since the build.

        The classic criterion: two particles each moving skin/2 toward
        one another is the worst case that could bring an unlisted pair
        inside the cutoff.
        """
        if self._build_positions is None:
            return True
        delta = positions - self._build_positions
        delta -= self.box * np.rint(delta / self.box)
        max_disp2 = float(np.max(np.sum(delta * delta, axis=1)))
        return max_disp2 > (0.5 * self.skin) ** 2

    def ensure(self, positions: np.ndarray) -> None:
        """Rebuild only if required."""
        if self.needs_rebuild(positions):
            self.build(positions)

    def pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """The listed (i, j) index arrays (i < j)."""
        if self._pairs_i is None:
            raise ValidationError("neighbor list not built yet")
        return self._pairs_i, self._pairs_j


def compute_forces_verlet(
    system: ParticleSystem,
    nlist: VerletNeighborList,
) -> Tuple[np.ndarray, float]:
    """LJ forces/energy from a Verlet list (auto-rebuilds when stale).

    Produces results identical to the cell-list path — only the pair
    enumeration strategy differs.
    """
    nlist.ensure(system.positions)
    ii, jj = nlist.pairs()
    forces = np.zeros_like(system.positions)
    if len(ii) == 0:
        return forces, 0.0
    pos = system.positions
    dr = pos[ii] - pos[jj]
    dr -= system.box * np.rint(dr / system.box)
    r2 = np.sum(dr * dr, axis=1)
    mask = r2 < nlist.cutoff ** 2
    ii, jj, dr, r2 = ii[mask], jj[mask], dr[mask], r2[mask]
    if len(r2) == 0:
        return forces, 0.0
    lj = system.lj_table
    si, sj = system.species[ii], system.species[jj]
    inv_r2 = 1.0 / r2
    inv_r6 = inv_r2 ** 3
    inv_r8 = inv_r6 * inv_r2
    inv_r12 = inv_r6 ** 2
    inv_r14 = inv_r12 * inv_r2
    scalar = lj.c14[si, sj] * inv_r14 - lj.c8[si, sj] * inv_r8
    f = scalar[:, None] * dr
    np.add.at(forces, ii, f)
    np.add.at(forces, jj, -f)
    energy = float(np.sum(lj.c12[si, sj] * inv_r12 - lj.c6[si, sj] * inv_r6))
    return forces, energy

"""Verlet neighbor lists with a skin margin — the CPU-style alternative.

Paper Sec. 2.2 notes that FPGA implementations of RL recompute neighbor
relations every timestep, so "the usual benefit for having a margin does
not apply."  CPU/GPU MD engines *do* use the margin: pairs within
``cutoff + skin`` are listed once and reused until some particle has
moved more than ``skin / 2``, amortizing list construction over many
steps.  This module provides that machinery so the trade-off the paper
alludes to can actually be measured (see the neighbor-list tests and
the reference-engine integration).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.md.kernels import pair_forces_energy, scatter_add
from repro.md.pairplan import iter_pair_chunks, plan_for_dims
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError


class VerletNeighborList:
    """A half (i < j, each pair once) Verlet list with displacement tracking.

    Parameters
    ----------
    cutoff:
        Interaction cutoff in angstrom.
    skin:
        Extra margin; pairs within ``cutoff + skin`` are listed.
    box:
        Periodic box edges.
    """

    def __init__(self, cutoff: float, skin: float, box: np.ndarray):
        if cutoff <= 0 or skin < 0:
            raise ValidationError("cutoff must be > 0 and skin >= 0")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.box = np.asarray(box, dtype=np.float64)
        if np.any(self.box < 2 * (cutoff + skin)):
            raise ValidationError(
                "box too small for cutoff + skin under minimum image"
            )
        self._pairs_i: Optional[np.ndarray] = None
        self._pairs_j: Optional[np.ndarray] = None
        self._build_positions: Optional[np.ndarray] = None
        self.builds = 0

    @property
    def list_cutoff(self) -> float:
        """The listing radius (cutoff + skin)."""
        return self.cutoff + self.skin

    def build(self, positions: np.ndarray) -> None:
        """(Re)build the pair list from scratch.

        When the box admits at least 3 cells of edge >= ``list_cutoff``
        per axis, particles are bucketed into an (anisotropic) cell grid
        and candidate pairs enumerated through the shared half-shell
        pair plan — O(N*m) like the production cell path.  Smaller boxes
        fall back to the O(N^2) minimum-image sweep, which stays the
        obviously-correct oracle.
        """
        dims = np.floor(self.box / self.list_cutoff).astype(np.int64)
        if np.all(dims >= 3):
            self._build_bucketed(positions, dims)
        else:
            self._build_bruteforce(positions)
        self._build_positions = positions.copy()
        self.builds += 1

    def _build_bruteforce(self, positions: np.ndarray) -> None:
        n = len(positions)
        ii, jj = np.triu_indices(n, k=1)
        dr = positions[ii] - positions[jj]
        dr -= self.box * np.rint(dr / self.box)
        r2 = np.sum(dr * dr, axis=1)
        mask = r2 < self.list_cutoff ** 2
        self._pairs_i = ii[mask]
        self._pairs_j = jj[mask]

    def _build_bucketed(self, positions: np.ndarray, dims: np.ndarray) -> None:
        # Cells have edge >= list_cutoff and >= 3 per axis, so the plan's
        # adjacency shift IS the minimum image for every admitted pair.
        edges = self.box / dims
        plan = plan_for_dims(tuple(int(d) for d in dims), tuple(edges))
        wrapped = np.mod(positions, self.box)
        coords = np.minimum(
            np.floor(wrapped / edges).astype(np.int64), dims - 1
        )
        cids = plan.cell_id(coords)
        order = np.argsort(cids, kind="stable")
        counts = np.bincount(cids, minlength=plan.n_cells)
        start = np.concatenate([[0], np.cumsum(counts)])
        pairs_i = []
        pairs_j = []
        rc2 = self.list_cutoff ** 2
        for chunk in iter_pair_chunks(plan, counts, start, order):
            dr = wrapped[chunk.ii] - wrapped[chunk.jj]
            shifted = plan.has_shift[chunk.row]
            if shifted.any():
                dr[shifted] -= plan.shift[chunk.row[shifted]]
            r2 = np.einsum("ij,ij->i", dr, dr)
            mask = r2 < rc2
            pairs_i.append(chunk.ii[mask])
            pairs_j.append(chunk.jj[mask])
        ii = np.concatenate(pairs_i) if pairs_i else np.empty(0, dtype=np.int64)
        jj = np.concatenate(pairs_j) if pairs_j else np.empty(0, dtype=np.int64)
        # Honor the i < j contract of pairs().
        self._pairs_i = np.minimum(ii, jj)
        self._pairs_j = np.maximum(ii, jj)

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """True when any particle moved more than skin/2 since the build.

        The shared :func:`~repro.md.cellstate.skin_exceeded` criterion —
        two particles each moving skin/2 toward one another is the worst
        case that could bring an unlisted pair inside the cutoff.
        """
        from repro.md.cellstate import skin_exceeded

        return skin_exceeded(
            positions, self._build_positions, self.box, self.skin
        )

    def ensure(self, positions: np.ndarray) -> None:
        """Rebuild only if required."""
        if self.needs_rebuild(positions):
            self.build(positions)

    def pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """The listed (i, j) index arrays (i < j)."""
        if self._pairs_i is None:
            raise ValidationError("neighbor list not built yet")
        return self._pairs_i, self._pairs_j


def minimum_pair_distance(system: ParticleSystem, grid) -> float:
    """Smallest interparticle distance (angstrom) under minimum image.

    Uses a skinless Verlet build at the grid's cell edge (= the cutoff),
    so only the bucketed candidate pairs are examined — O(N*m), not
    O(N^2).  When no two particles are within one cell edge of each
    other, the cell edge itself is returned as a lower bound: every
    unlisted pair is at least that far apart.

    The distributed machine's degradation accounting uses this to start
    its force-Lipschitz scan at the occupied range instead of at the
    divergent LJ core (see ``DistributedMachine._force_lipschitz``).
    """
    nlist = VerletNeighborList(
        cutoff=float(grid.cell_edge), skin=0.0, box=system.box
    )
    nlist.build(system.positions)
    ii, jj = nlist.pairs()
    if len(ii) == 0:
        return float(grid.cell_edge)
    dr = system.positions[ii] - system.positions[jj]
    dr -= system.box * np.rint(dr / system.box)
    r2 = np.sum(dr * dr, axis=1)
    return float(np.sqrt(r2.min()))


def compute_forces_verlet(
    system: ParticleSystem,
    nlist: VerletNeighborList,
) -> Tuple[np.ndarray, float]:
    """LJ forces/energy from a Verlet list (auto-rebuilds when stale).

    Produces results identical to the cell-list path — only the pair
    enumeration strategy differs.
    """
    nlist.ensure(system.positions)
    ii, jj = nlist.pairs()
    forces = np.zeros_like(system.positions)
    if len(ii) == 0:
        return forces, 0.0
    pos = system.positions
    dr = pos[ii] - pos[jj]
    dr -= system.box * np.rint(dr / system.box)
    r2 = np.sum(dr * dr, axis=1)
    mask = r2 < nlist.cutoff ** 2
    ii, jj, dr, r2 = ii[mask], jj[mask], dr[mask], r2[mask]
    if len(r2) == 0:
        return forces, 0.0
    f, energy = pair_forces_energy(
        dr, r2, system.species[ii], system.species[jj], system.lj_table
    )
    scatter_add(forces, ii, f)
    scatter_add(forces, jj, -f)
    return forces, energy

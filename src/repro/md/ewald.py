"""Short-range (real-space) Ewald electrostatics — the other RL force.

Paper Sec. 2.1: "RL forces have two components: the short range term of
the electrostatic force obtained using the Particle Mesh Ewald (PME)
method, and the force deduced from the Lennard-Jones potential ... in
any case the RL force pipelines are nearly identical."  The paper's
evaluation enables only LJ, but the architecture is explicitly built to
host this term too, so the reproduction provides it.

The Ewald decomposition splits Coulomb interactions into a smooth
long-range part (solved on a mesh — out of scope here, as in the paper)
and a short-range real-space part that decays fast enough for a cutoff:

    V_ij = C q_i q_j erfc(beta * r) / r
    F_ij = C q_i q_j [ erfc(beta * r) / r^2
                       + 2 beta / sqrt(pi) * exp(-beta^2 r^2) / r ] r_hat

with ``beta`` the Ewald splitting parameter chosen so erfc(beta * R_c)
is below the error tolerance.  Like every radial force, it reduces to a
scalar function of r^2 times the displacement vector — exactly the form
the FASDA pipeline's indexed tables evaluate (see
:class:`repro.core.datapath.TabulatedRadialPipeline`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.special import erfc

from repro.md.kernels import scatter_add
from repro.util.errors import ValidationError

#: Coulomb constant in kcal/mol * A / e^2 (CHARMM/AMBER convention).
COULOMB_KCAL_MOL_A = 332.0637133


def choose_beta(cutoff: float, tolerance: float = 1e-5) -> float:
    """Smallest Ewald splitting parameter with erfc(beta*Rc) <= tolerance.

    Solved by bisection; the standard OpenMM/Amber heuristic.
    """
    if not 0 < tolerance < 1:
        raise ValidationError("tolerance must be in (0, 1)")
    if cutoff <= 0:
        raise ValidationError("cutoff must be positive")
    lo, hi = 0.0, 10.0 / cutoff
    while erfc(hi * cutoff) > tolerance:
        hi *= 2.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if erfc(mid * cutoff) > tolerance:
            lo = mid
        else:
            hi = mid
    return hi


def ewald_real_scalar(r2: np.ndarray, beta: float) -> np.ndarray:
    """The radial force kernel S(r2) with F_vec = q_i q_j S(r2) * dr.

    ``S(r2) = C [ erfc(beta r)/r^3 + 2 beta/sqrt(pi) exp(-beta^2 r^2)/r^2 ]``
    (the extra 1/r converts the r_hat direction into the raw dr vector).
    """
    r2 = np.asarray(r2, dtype=np.float64)
    r = np.sqrt(r2)
    return COULOMB_KCAL_MOL_A * (
        erfc(beta * r) / (r2 * r)
        + (2.0 * beta / np.sqrt(np.pi)) * np.exp(-beta * beta * r2) / r2
    )


def ewald_real_energy_scalar(r2: np.ndarray, beta: float) -> np.ndarray:
    """Pair energy kernel: V = q_i q_j * E(r2), E = C erfc(beta r)/r."""
    r2 = np.asarray(r2, dtype=np.float64)
    r = np.sqrt(r2)
    return COULOMB_KCAL_MOL_A * erfc(beta * r) / r


def ewald_real_forces_bruteforce(
    positions: np.ndarray,
    charges: np.ndarray,
    box: np.ndarray,
    cutoff: float,
    beta: float,
) -> Tuple[np.ndarray, float]:
    """O(N^2) minimum-image real-space Ewald forces and energy.

    Reference implementation for validating the cell-list and tabulated
    paths; use only on small systems.
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    n = len(positions)
    if charges.shape != (n,):
        raise ValidationError("charges must be (N,)")
    forces = np.zeros_like(positions)
    ii, jj = np.triu_indices(n, k=1)
    dr = positions[ii] - positions[jj]
    dr -= box * np.rint(dr / box)
    r2 = np.sum(dr * dr, axis=1)
    mask = r2 < cutoff * cutoff
    ii, jj, dr, r2 = ii[mask], jj[mask], dr[mask], r2[mask]
    if len(r2) == 0:
        return forces, 0.0
    qq = charges[ii] * charges[jj]
    f = (qq * ewald_real_scalar(r2, beta))[:, None] * dr
    scatter_add(forces, ii, f)
    scatter_add(forces, jj, -f)
    energy = float(np.sum(qq * ewald_real_energy_scalar(r2, beta)))
    return forces, energy

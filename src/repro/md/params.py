"""Lennard-Jones parameters, mixing rules, and pair-coefficient tables.

The paper's evaluation runs "neutral sodium atoms in vacuum with a custom
force field that only enables Lennard-Jones forces" (Sec. 5.1 and the
artifact appendix).  The exact sigma/epsilon values are not published;
we use Aqvist-style sodium parameters, and carry a small table of other
elements so mixed-species systems exercise the element-indexed
coefficient lookup the force pipeline performs (Fig. 6: "e denotes the
element type").

The pipeline consumes *pair* coefficients

* ``c14 = 48 * eps_ij * sigma_ij**12``  (for the ``r**-14`` term)
* ``c8  = 24 * eps_ij * sigma_ij**6``   (for the ``r**-8`` term)

so that Eq. 2 becomes ``F_vec = (c14 * r**-14 - c8 * r**-8) * r_vec``, and
for energy ``c12 = 4 * eps * sigma**12``, ``c6 = 4 * eps * sigma**6`` so
Eq. 1 becomes ``V = c12 * r**-12 - c6 * r**-6``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Element:
    """A chemical species with LJ parameters.

    Attributes
    ----------
    symbol:
        Element symbol, e.g. ``"Na"``.
    mass:
        Atomic mass in amu.
    sigma:
        LJ characteristic distance in angstrom.
    epsilon:
        LJ well depth in kcal/mol.
    """

    symbol: str
    mass: float
    sigma: float
    epsilon: float


#: Registry of species usable in datasets.  Values: mass (amu),
#: sigma (A), epsilon (kcal/mol).  Sodium is the paper's workload; the
#: rest are common LJ parameterizations used to exercise mixed-species
#: coefficient lookup.
ELEMENTS: Dict[str, Element] = {
    "Na": Element("Na", 22.98976928, 2.575, 0.0469),
    "Cl": Element("Cl", 35.453, 4.417, 0.1178),
    "Ar": Element("Ar", 39.948, 3.401, 0.2339),
    "Ne": Element("Ne", 20.1797, 2.782, 0.0694),
    "Kr": Element("Kr", 83.798, 3.601, 0.3255),
    "Xe": Element("Xe", 131.293, 3.935, 0.4330),
}

#: Formal ionic charges (e) for species that carry one in typical
#: force fields; species absent here are treated as neutral.
FORMAL_CHARGES: Dict[str, float] = {"Na": +1.0, "Cl": -1.0}


class LJTable:
    """Pairwise LJ coefficient tables over a list of species.

    Uses Lorentz-Berthelot mixing: ``sigma_ij = (sigma_i + sigma_j) / 2``,
    ``eps_ij = sqrt(eps_i * eps_j)``.  This mirrors the per-element-pair
    ROM the FASDA pipeline indexes with the two particles' element codes.

    Parameters
    ----------
    species:
        Sequence of element symbols; a particle's integer species id
        indexes this sequence.
    """

    def __init__(self, species: Sequence[str] = ("Na",)):
        if not species:
            raise ValidationError("species list must be non-empty")
        unknown = [s for s in species if s not in ELEMENTS]
        if unknown:
            raise ValidationError(f"unknown element symbols: {unknown}")
        self.species = tuple(species)
        sigma = np.array([ELEMENTS[s].sigma for s in species])
        eps = np.array([ELEMENTS[s].epsilon for s in species])
        self.masses = np.array([ELEMENTS[s].mass for s in species])
        sig_ij = 0.5 * (sigma[:, None] + sigma[None, :])
        eps_ij = np.sqrt(eps[:, None] * eps[None, :])
        self.sigma_ij = sig_ij
        self.eps_ij = eps_ij
        # Force-path coefficients (see module docstring).
        self.c14 = 48.0 * eps_ij * sig_ij ** 12
        self.c8 = 24.0 * eps_ij * sig_ij ** 6
        # Energy-path coefficients.
        self.c12 = 4.0 * eps_ij * sig_ij ** 12
        self.c6 = 4.0 * eps_ij * sig_ij ** 6

    @property
    def n_species(self) -> int:
        """Number of species in the table."""
        return len(self.species)

    def scaled(self, length_scale: float) -> "LJTable":
        """Return a copy with coefficients expressed in rescaled length units.

        The FASDA datapath normalizes the cell edge (= cutoff) to 1.0, so
        its coefficient ROM holds values computed from
        ``sigma' = sigma / length_scale``.  Energies from the scaled table
        are unchanged (kcal/mol); forces come out in kcal/mol per
        *normalized* length unit and must be divided by ``length_scale``
        once more to recover kcal/mol/A.
        """
        if length_scale <= 0:
            raise ValidationError("length_scale must be positive")
        out = LJTable.__new__(LJTable)
        out.species = self.species
        out.masses = self.masses
        out.sigma_ij = self.sigma_ij / length_scale
        out.eps_ij = self.eps_ij
        # All coefficients carry sigma^12 or sigma^6; rescaling sigma
        # rescales them by length_scale^-12 / length_scale^-6.
        out.c14 = self.c14 / length_scale ** 12
        out.c8 = self.c8 / length_scale ** 6
        out.c12 = self.c12 / length_scale ** 12
        out.c6 = self.c6 / length_scale ** 6
        return out

"""Crystal lattice builders: physically ordered initial conditions.

The paper's random dataset maximizes filter workload; these builders
produce *ordered* systems (FCC noble-gas crystals, rock-salt NaCl) whose
known structure makes them good validation workloads — an FCC argon
crystal has a textbook g(r), and a rock-salt ionic crystal exercises the
LJ + Coulomb composite force model with a stable ground state instead of
the violent random start.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.md.cells import CellGrid
from repro.md.dataset import maxwell_boltzmann_velocities
from repro.md.params import FORMAL_CHARGES, LJTable
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError

#: FCC conventional-cell basis (fractions of the cubic lattice constant).
_FCC_BASIS = np.array(
    [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
)


def build_fcc(
    element: str,
    n_cells_per_axis: int,
    lattice_constant: float,
    temperature_k: float = 0.0,
    seed: int = 0,
) -> ParticleSystem:
    """An FCC crystal of one species.

    Parameters
    ----------
    element:
        Species symbol (e.g. ``"Ar"``; a0 ~ 5.26 A for solid argon).
    n_cells_per_axis:
        Conventional cells per axis (4 atoms each).
    lattice_constant:
        Cubic cell edge in angstrom.
    temperature_k:
        Maxwell-Boltzmann velocity temperature (0 = at rest).
    """
    if n_cells_per_axis < 1 or lattice_constant <= 0:
        raise ValidationError("invalid lattice parameters")
    k = n_cells_per_axis
    origins = (
        np.stack(
            np.meshgrid(np.arange(k), np.arange(k), np.arange(k), indexing="ij"),
            axis=-1,
        ).reshape(-1, 3)
        * lattice_constant
    )
    positions = (
        origins[:, None, :] + _FCC_BASIS[None, :, :] * lattice_constant
    ).reshape(-1, 3)
    lj = LJTable((element,))
    n = len(positions)
    species = np.zeros(n, dtype=np.int32)
    rng = np.random.default_rng(seed)
    if temperature_k > 0:
        velocities = maxwell_boltzmann_velocities(
            rng, lj.masses[species], temperature_k
        )
    else:
        velocities = np.zeros_like(positions)
    system = ParticleSystem(
        positions=positions,
        velocities=velocities,
        species=species,
        lj_table=lj,
        box=np.full(3, k * lattice_constant),
    )
    if temperature_k > 0:
        system.remove_com_velocity()
    return system


def build_rocksalt(
    n_cells_per_axis: int,
    lattice_constant: float = 5.64,  # NaCl experimental a0
    cation: str = "Na",
    anion: str = "Cl",
    temperature_k: float = 0.0,
    seed: int = 0,
) -> ParticleSystem:
    """A rock-salt (B1) ionic crystal with formal charges.

    Each conventional cell holds 4 cation + 4 anion sites (two
    interpenetrating FCC lattices offset by a0/2 along x).
    """
    if n_cells_per_axis < 1 or lattice_constant <= 0:
        raise ValidationError("invalid lattice parameters")
    k = n_cells_per_axis
    origins = (
        np.stack(
            np.meshgrid(np.arange(k), np.arange(k), np.arange(k), indexing="ij"),
            axis=-1,
        ).reshape(-1, 3)
        * lattice_constant
    )
    cat = (
        origins[:, None, :] + _FCC_BASIS[None, :, :] * lattice_constant
    ).reshape(-1, 3)
    an_basis = _FCC_BASIS + np.array([0.5, 0.0, 0.0])
    an = (
        origins[:, None, :] + an_basis[None, :, :] * lattice_constant
    ).reshape(-1, 3)
    positions = np.concatenate([cat, an])
    lj = LJTable((cation, anion))
    species = np.concatenate(
        [np.zeros(len(cat), dtype=np.int32), np.ones(len(an), dtype=np.int32)]
    )
    charges = np.where(
        species == 0,
        FORMAL_CHARGES.get(cation, 0.0),
        FORMAL_CHARGES.get(anion, 0.0),
    )
    rng = np.random.default_rng(seed)
    if temperature_k > 0:
        velocities = maxwell_boltzmann_velocities(
            rng, lj.masses[species], temperature_k
        )
    else:
        velocities = np.zeros_like(positions)
    system = ParticleSystem(
        positions=positions,
        velocities=velocities,
        species=species,
        lj_table=lj,
        box=np.full(3, k * lattice_constant),
        charges=charges,
    )
    if temperature_k > 0:
        system.remove_com_velocity()
    return system


def grid_for_system(
    system: ParticleSystem, cutoff: float
) -> Optional[CellGrid]:
    """A cell grid for an arbitrary system, if its box permits one.

    The cell edge must equal the cutoff and each axis must hold >= 3
    whole cells; returns None when the box does not divide evenly
    (callers can then re-scale the lattice or pick another cutoff).
    """
    dims = []
    for edge in system.box:
        n = edge / cutoff
        if abs(n - round(n)) > 1e-9 or round(n) < 3:
            return None
        dims.append(int(round(n)))
    return CellGrid(tuple(dims), cutoff)

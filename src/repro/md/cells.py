"""Cell-space partitioning and the half-shell neighbor method (paper 2.2).

The simulation box is divided into cubic cells of edge ``R_c`` (the
cutoff radius): the smallest size that keeps the neighborhood at 26 cells
and the largest that filters pairs efficiently (paper Fig. 3).  With
Newton's third law applied, a home cell only interacts with itself plus
13 of its 26 neighbors — the *half shell* — because the other 13 send
their particles to it (paper Fig. 2(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.errors import ValidationError

#: The 13 half-shell neighbor offsets: every (dx, dy, dz) in {-1,0,1}^3
#: that is lexicographically greater than (0, 0, 0).  Together with the
#: home cell they cover each unordered cell pair exactly once.
HALF_SHELL_OFFSETS: Tuple[Tuple[int, int, int], ...] = tuple(
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) > (0, 0, 0)
)

#: All 26 neighbor offsets (full shell), for methods that need them.
FULL_SHELL_OFFSETS: Tuple[Tuple[int, int, int], ...] = tuple(
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) != (0, 0, 0)
)


@dataclass(frozen=True)
class CellGrid:
    """A periodic grid of cubic cells.

    Parameters
    ----------
    dims:
        ``(Dx, Dy, Dz)`` cell counts.  Each must be >= 3 so that the 26
        neighbor cells of any cell are distinct under periodic wrap;
        smaller grids would make a neighbor image coincide with another
        and double-count pairs.
    cell_edge:
        Cell edge length in angstrom (equal to the cutoff radius).
    """

    dims: Tuple[int, int, int]
    cell_edge: float

    def __post_init__(self) -> None:
        if len(self.dims) != 3 or any(int(d) != d or d < 3 for d in self.dims):
            raise ValidationError(
                f"cell grid dims must be 3 integers >= 3, got {self.dims}"
            )
        if not self.cell_edge > 0:
            raise ValidationError("cell_edge must be positive")
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        dx, dy, dz = self.dims
        return dx * dy * dz

    @property
    def box(self) -> np.ndarray:
        """Simulation box edge lengths implied by the grid."""
        return np.asarray(self.dims, dtype=np.float64) * self.cell_edge

    def cell_id(self, coords: np.ndarray) -> np.ndarray:
        """Linear cell id from integer coordinates (paper Eq. 7).

        ``CID = Dy*Dz*x + Dz*y + z`` — x-major so that travel toward
        positive x/y/z shortens ring traversal (paper 3.1).
        """
        coords = np.asarray(coords, dtype=np.int64)
        _, dy, dz = self.dims
        return dy * dz * coords[..., 0] + dz * coords[..., 1] + coords[..., 2]

    def cell_coords(self, cid: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`cell_id`: linear id -> (x, y, z)."""
        cid = np.asarray(cid, dtype=np.int64)
        _, dy, dz = self.dims
        x = cid // (dy * dz)
        rem = cid - x * dy * dz
        return np.stack([x, rem // dz, rem % dz], axis=-1)

    def coords_of_positions(self, positions: np.ndarray) -> np.ndarray:
        """Integer cell coordinates containing each (wrapped) position."""
        coords = np.floor(positions / self.cell_edge).astype(np.int64)
        # Guard against positions exactly at the upper box face after a
        # floating-point wrap landing on box length.
        return np.minimum(coords, np.asarray(self.dims) - 1)

    def wrap_coords(self, coords: np.ndarray) -> np.ndarray:
        """Wrap possibly-out-of-range integer coordinates periodically."""
        return np.mod(coords, np.asarray(self.dims, dtype=np.int64))

    def neighbor_with_shift(
        self, coord: Tuple[int, int, int], offset: Tuple[int, int, int]
    ) -> Tuple[Tuple[int, int, int], np.ndarray]:
        """Neighbor cell of ``coord`` at ``offset`` plus its image shift.

        Returns the wrapped neighbor coordinate and the position shift
        (in angstrom) that must be *added* to particles stored in the
        wrapped cell to place them in the unwrapped image adjacent to
        ``coord``.
        """
        raw = np.asarray(coord, dtype=np.int64) + np.asarray(offset, dtype=np.int64)
        wrapped = self.wrap_coords(raw)
        shift = (raw - wrapped).astype(np.float64) * self.cell_edge
        return tuple(int(c) for c in wrapped), shift


class CellList:
    """Bucketed particle indices per cell, rebuilt every timestep.

    FPGA implementations of RL rebuild neighbor lists each timestep
    (paper 2.2), so there is no margin/skin; this container mirrors that:
    a single :func:`numpy.argsort` bucket pass, then per-cell index
    slices served as views.
    """

    def __init__(self, grid: CellGrid, positions: np.ndarray):
        self.grid = grid
        coords = grid.coords_of_positions(positions)
        cids = grid.cell_id(coords)
        order = np.argsort(cids, kind="stable")
        self.order = order
        self.sorted_cids = cids[order]
        # start[c] .. start[c+1] indexes `order` for cell c.
        counts = np.bincount(cids, minlength=grid.n_cells)
        self.counts = counts
        self.start = np.concatenate([[0], np.cumsum(counts)])

    def particles_in_cell(self, cid: int) -> np.ndarray:
        """Particle indices (a view into the bucket order) for cell ``cid``."""
        return self.order[self.start[cid] : self.start[cid + 1]]

    def occupancies(self) -> np.ndarray:
        """Per-cell particle counts, memoized per build.

        Returns the ``counts`` array computed by the constructor's single
        bucket pass — calling this any number of times per step costs
        nothing, so hot paths (traffic accounting, :class:`StepStats`)
        may all read it without coordinating.  The array is shared, not
        copied; callers that store it across steps must copy.
        """
        return self.counts

    def cells_nonempty(self) -> np.ndarray:
        """Ids of cells containing at least one particle (int64 array)."""
        return np.nonzero(self.counts)[0]

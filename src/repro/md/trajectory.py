"""XYZ trajectory output — dump frames for external visualization.

Extended-XYZ-style frames: a count line, a comment line carrying the
box and step, then one ``symbol x y z`` line per atom.  VMD/OVITO read
this directly.  The :class:`TrajectoryWriter` plugs into either engine's
step loop; :func:`read_xyz` round-trips what we write.
"""

from __future__ import annotations

from typing import List, TextIO, Tuple, Union

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError

PathOrFile = Union[str, TextIO]


class TrajectoryWriter:
    """Appends frames of a ParticleSystem to an XYZ file.

    Parameters
    ----------
    dest:
        Path or open text file.
    """

    def __init__(self, dest: PathOrFile):
        if isinstance(dest, (str, bytes)):
            self._fh = open(dest, "w")
            self._owns = True
        else:
            self._fh = dest
            self._owns = False
        self.frames_written = 0

    def write_frame(self, system: ParticleSystem, step: int = 0) -> None:
        """Append one frame."""
        fh = self._fh
        box = system.box
        fh.write(f"{system.n}\n")
        fh.write(
            f'step={step} box="{box[0]:.6f} {box[1]:.6f} {box[2]:.6f}"\n'
        )
        symbols = [system.lj_table.species[s] for s in system.species]
        for sym, (x, y, z) in zip(symbols, system.positions):
            fh.write(f"{sym} {x:.6f} {y:.6f} {z:.6f}\n")
        self.frames_written += 1

    def close(self) -> None:
        """Flush and close (if this writer opened the file)."""
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "TrajectoryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_xyz(src: PathOrFile) -> List[Tuple[int, np.ndarray, List[str], np.ndarray]]:
    """Read all frames from an XYZ file written by :class:`TrajectoryWriter`.

    Returns
    -------
    List of ``(step, box, symbols, positions)`` tuples.
    """
    if isinstance(src, (str, bytes)):
        fh: TextIO = open(src, "r")
        owns = True
    else:
        fh, owns = src, False
    try:
        frames = []
        while True:
            count_line = fh.readline()
            if not count_line.strip():
                break
            try:
                n = int(count_line)
            except ValueError as exc:
                raise ValidationError(f"bad XYZ count line: {count_line!r}") from exc
            comment = fh.readline()
            step = 0
            box = np.zeros(3)
            for token in comment.split():
                if token.startswith("step="):
                    step = int(token.split("=", 1)[1])
                if token.startswith('box="'):
                    box[0] = float(token.split('"')[1])
            # Box y/z follow inside the quotes; reparse robustly.
            if 'box="' in comment:
                inner = comment.split('box="', 1)[1].split('"', 1)[0]
                box = np.array([float(v) for v in inner.split()])
            symbols: List[str] = []
            positions = np.empty((n, 3))
            for i in range(n):
                parts = fh.readline().split()
                if len(parts) != 4:
                    raise ValidationError(f"bad XYZ atom line at frame atom {i}")
                symbols.append(parts[0])
                positions[i] = [float(v) for v in parts[1:]]
            frames.append((step, box, symbols, positions))
        return frames
    finally:
        if owns:
            fh.close()


def dump_trajectory(
    engine,
    dest: PathOrFile,
    n_steps: int,
    dump_every: int = 10,
) -> int:
    """Run an engine while dumping frames; returns frames written.

    Works with any object exposing ``run(n, record_every=0)`` and
    ``system`` (ReferenceEngine and FasdaMachine both do).
    """
    if n_steps < 0 or dump_every < 1:
        raise ValidationError("n_steps >= 0 and dump_every >= 1 required")
    with TrajectoryWriter(dest) as writer:
        writer.write_frame(engine.system, step=0)
        done = 0
        while done < n_steps:
            chunk = min(dump_every, n_steps - done)
            engine.run(chunk, record_every=0)
            done += chunk
            writer.write_frame(engine.system, step=done)
        return writer.frames_written

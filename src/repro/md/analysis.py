"""Trajectory and structure analysis for the MD substrate.

Standard observables used to validate the physics the accelerator
produces: radial distribution function (structure), mean squared
displacement (diffusion), velocity autocorrelation, and the virial
pressure.  These are what a downstream user runs on FASDA output to
check a simulation is sane, and what our examples use to show the
machine's trajectories are physically equivalent to the reference's.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.md.cells import CellGrid
from repro.md.forcefield import PairKernel, compute_forces_kernel
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError
from repro.util.units import BOLTZMANN_KCAL_MOL_K


def radial_distribution_function(
    system: ParticleSystem, r_max: float, n_bins: int = 100
) -> Tuple[np.ndarray, np.ndarray]:
    """g(r) by minimum-image pair histogram.

    O(N^2); intended for up to a few thousand particles.  ``r_max`` must
    not exceed half the smallest box edge (minimum image validity).

    Returns
    -------
    (r_centers, g):
        Bin centers (angstrom) and the normalized pair density.
    """
    if r_max <= 0 or n_bins < 1:
        raise ValidationError("r_max and n_bins must be positive")
    if r_max > 0.5 * float(np.min(system.box)):
        raise ValidationError("r_max exceeds half the box (minimum image)")
    pos = system.positions
    n = system.n
    ii, jj = np.triu_indices(n, k=1)
    dr = pos[ii] - pos[jj]
    dr -= system.box * np.rint(dr / system.box)
    r = np.sqrt(np.sum(dr * dr, axis=1))
    counts, edges = np.histogram(r, bins=n_bins, range=(0.0, r_max))
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / float(np.prod(system.box))
    # Each unordered pair counted once; ideal-gas expectation per shell:
    ideal = 0.5 * n * density * shell_volumes
    with np.errstate(invalid="ignore", divide="ignore"):
        g = np.where(ideal > 0, counts / ideal, 0.0)
    return centers, g


class UnwrappedTrajectory:
    """Accumulates unwrapped positions from wrapped snapshots.

    Periodic wrapping destroys displacement information; this tracker
    reconstructs continuous trajectories by adding the minimum-image
    displacement between consecutive wrapped frames (valid while no
    particle moves more than half a box per recording interval —
    guaranteed at MD timescales).
    """

    def __init__(self, system: ParticleSystem):
        self.box = system.box.copy()
        self._last_wrapped = system.positions.copy()
        self._unwrapped = system.positions.copy()
        self.frames: List[np.ndarray] = [self._unwrapped.copy()]

    def record(self, system: ParticleSystem) -> None:
        """Append the current (wrapped) state as an unwrapped frame."""
        delta = system.positions - self._last_wrapped
        delta -= self.box * np.rint(delta / self.box)
        self._unwrapped += delta
        self._last_wrapped = system.positions.copy()
        self.frames.append(self._unwrapped.copy())

    def mean_squared_displacement(self) -> np.ndarray:
        """MSD(t) relative to frame 0, one value per recorded frame."""
        ref = self.frames[0]
        return np.array(
            [float(np.mean(np.sum((f - ref) ** 2, axis=1))) for f in self.frames]
        )


def velocity_autocorrelation(velocity_frames: Sequence[np.ndarray]) -> np.ndarray:
    """Normalized VACF: C(t) = <v(0).v(t)> / <v(0).v(0)>."""
    if not len(velocity_frames):
        raise ValidationError("need at least one velocity frame")
    v0 = np.asarray(velocity_frames[0])
    norm = float(np.mean(np.sum(v0 * v0, axis=1)))
    if norm == 0.0:
        raise ValidationError("zero initial velocities")
    return np.array(
        [float(np.mean(np.sum(v0 * np.asarray(v), axis=1))) / norm for v in velocity_frames]
    )


def static_structure_factor(
    system: ParticleSystem, k_vectors: np.ndarray
) -> np.ndarray:
    """Static structure factor ``S(k) = |sum_j exp(i k.r_j)|^2 / N``.

    ``k_vectors`` are physical wave vectors (2 pi m / L per axis for
    periodic compatibility).  Crystals show Bragg peaks (S ~ N at
    reciprocal-lattice vectors); liquids show the broad first peak.
    """
    k_vectors = np.atleast_2d(np.asarray(k_vectors, dtype=np.float64))
    if k_vectors.shape[1] != 3:
        raise ValidationError("k_vectors must be (K, 3)")
    phase = k_vectors @ system.positions.T  # (K, N)
    s_re = np.cos(phase).sum(axis=1)
    s_im = np.sin(phase).sum(axis=1)
    return (s_re * s_re + s_im * s_im) / system.n


def commensurate_k(system: ParticleSystem, m: Sequence[int]) -> np.ndarray:
    """A box-commensurate wave vector ``2 pi m / L`` (integer ``m``)."""
    m = np.asarray(m, dtype=np.float64)
    return 2.0 * np.pi * m / system.box


class _VirialKernel(PairKernel):
    """Wraps a kernel to accumulate the pair virial sum(F_ij . r_ij)."""

    def __init__(self, inner: PairKernel):
        self.inner = inner
        self.virial = 0.0

    def evaluate(self, system, dr, r2, idx_i, idx_j):
        f, e = self.inner.evaluate(system, dr, r2, idx_i, idx_j)
        self.virial += float(np.sum(f * dr))
        return f, e


def virial_pressure(
    system: ParticleSystem, grid: CellGrid, kernel: PairKernel
) -> float:
    """Instantaneous virial pressure in kcal/mol/A^3.

    ``P = (N kB T + W/3) / V`` with ``W = sum_pairs F_ij . r_ij``.
    Multiply by 6.9477e4 to get bar.
    """
    wrapper = _VirialKernel(kernel)
    compute_forces_kernel(system, grid, wrapper)
    volume = float(np.prod(system.box))
    nkt = system.n * BOLTZMANN_KCAL_MOL_K * system.temperature()
    return (nkt + wrapper.virial / 3.0) / volume

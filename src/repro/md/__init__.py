"""Molecular-dynamics substrate: the numerical reference implementation.

This package is the reproduction's stand-in for OpenMM: a from-scratch,
double-precision, LJ-only range-limited MD engine with cell lists, the
half-shell method, periodic boundaries, and velocity-Verlet integration.
It serves three roles:

* the golden model that the FASDA machine's fixed-point/table-lookup
  datapath is validated against (paper Fig. 19);
* the workload generator for the paper's custom dataset (64 sodium atoms
  per cell, Sec. 5.1);
* a plain, readable statement of the algorithm the accelerator implements.
"""

from repro.md.cells import CellGrid, HALF_SHELL_OFFSETS
from repro.md.dataset import build_dataset
from repro.md.engine import ReferenceEngine
from repro.md.forcefield import (
    CompositeKernel,
    EwaldRealKernel,
    LennardJonesKernel,
    compute_forces_kernel,
)
from repro.md.integrator import VelocityVerlet
from repro.md.kernels import pair_forces_energy, scatter_add
from repro.md.pairplan import (
    CellPairPlan,
    candidates_per_cell,
    iter_pair_chunks,
    plan_for_dims,
    plan_for_grid,
)
from repro.md.params import Element, ELEMENTS, LJTable
from repro.md.reference import (
    compute_forces_bruteforce,
    compute_forces_cells,
    compute_forces_cells_loop,
)
from repro.md.minimize import minimize
from repro.md.system import ParticleSystem
from repro.md.thermostat import BerendsenThermostat, VelocityRescaleThermostat

__all__ = [
    "ParticleSystem",
    "CellGrid",
    "HALF_SHELL_OFFSETS",
    "Element",
    "ELEMENTS",
    "LJTable",
    "VelocityVerlet",
    "ReferenceEngine",
    "compute_forces_cells",
    "compute_forces_cells_loop",
    "compute_forces_bruteforce",
    "compute_forces_kernel",
    "CellPairPlan",
    "plan_for_grid",
    "plan_for_dims",
    "iter_pair_chunks",
    "candidates_per_cell",
    "pair_forces_energy",
    "scatter_add",
    "LennardJonesKernel",
    "EwaldRealKernel",
    "CompositeKernel",
    "BerendsenThermostat",
    "VelocityRescaleThermostat",
    "minimize",
    "build_dataset",
]

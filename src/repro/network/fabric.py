"""Fabric traffic accounting: packets -> bandwidth (paper Fig. 18).

The FASDA communication interface sends 512-bit AXI-Stream packets
(4 records each) over two QSFP28 ports — one for positions, one for
forces — through a 100 GbE switch.  Bandwidth demand is therefore a pure
counting exercise: packets per iteration times packet size divided by
iteration time.  This module collects those counts per (source,
destination, channel) and converts them, including the cooldown-counter
throttling the paper uses to spread transmission peaks (Sec. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.util.errors import ValidationError

#: Channels the paper separates onto distinct QSFP28 ports.
CHANNELS = ("position", "force")


@dataclass
class LinkStats:
    """Accumulated traffic for one directed (src, dst, channel) flow."""

    packets: int = 0
    records: int = 0

    def bits(self, packet_bits: int) -> int:
        """Total bits, at ``packet_bits`` per packet."""
        return self.packets * packet_bits

    def __add__(self, other: "LinkStats") -> "LinkStats":
        """Merge two accumulation intervals (multi-step fault sweeps)."""
        if not isinstance(other, LinkStats):
            return NotImplemented
        return LinkStats(
            packets=self.packets + other.packets,
            records=self.records + other.records,
        )

    def __radd__(self, other):
        # Support sum(stats_list) starting from 0.
        if other == 0:
            return self
        return self.__add__(other)


class Fabric:
    """Per-flow packet accounting plus bandwidth/cooldown math.

    Parameters
    ----------
    n_nodes:
        Number of FPGA nodes.
    packet_bits:
        Bits per packet (paper: 512).
    records_per_packet:
        Data records per packet (paper: 4 positions or 4 forces).
    link_gbps:
        Physical line rate per port (paper: 100 Gbps QSFP28).
    """

    def __init__(
        self,
        n_nodes: int,
        packet_bits: int = 512,
        records_per_packet: int = 4,
        link_gbps: float = 100.0,
    ):
        if n_nodes < 1:
            raise ValidationError("n_nodes must be >= 1")
        if packet_bits <= 0 or records_per_packet <= 0:
            raise ValidationError("packet geometry must be positive")
        self.n_nodes = n_nodes
        self.packet_bits = packet_bits
        self.records_per_packet = records_per_packet
        self.link_gbps = link_gbps
        self.flows: Dict[Tuple[int, int, str], LinkStats] = {}

    def _flow(self, src: int, dst: int, channel: str) -> LinkStats:
        if channel not in CHANNELS:
            raise ValidationError(f"unknown channel {channel!r}")
        for node in (src, dst):
            if not 0 <= node < self.n_nodes:
                raise ValidationError(f"node {node} out of range")
        key = (src, dst, channel)
        if key not in self.flows:
            self.flows[key] = LinkStats()
        return self.flows[key]

    def add_records(self, src: int, dst: int, channel: str, n_records: int) -> None:
        """Account ``n_records`` data records sent src -> dst.

        Records are packed ``records_per_packet`` per packet with the
        final partial packet padded (the hardware sends it once the
        `last` flag fires even if not all four registers filled).
        """
        if n_records < 0:
            raise ValidationError("n_records must be >= 0")
        if n_records == 0:
            return
        flow = self._flow(src, dst, channel)
        flow.records += int(n_records)
        flow.packets += int(np.ceil(n_records / self.records_per_packet))

    def node_egress_bits(self, node: int, channel: str) -> int:
        """Total bits leaving ``node`` on ``channel`` this interval."""
        return sum(
            stats.bits(self.packet_bits)
            for (s, d, c), stats in self.flows.items()
            if s == node and c == channel
        )

    def node_egress_gbps(
        self, node: int, channel: str, interval_seconds: float
    ) -> float:
        """Average egress bandwidth demand in Gbps over an interval."""
        if interval_seconds <= 0:
            raise ValidationError("interval must be positive")
        return self.node_egress_bits(node, channel) / interval_seconds / 1e9

    def max_node_egress_gbps(self, channel: str, interval_seconds: float) -> float:
        """Worst per-node average egress demand (Fig. 18(A)'s metric)."""
        return max(
            (self.node_egress_gbps(n, channel, interval_seconds) for n in range(self.n_nodes)),
            default=0.0,
        )

    def breakdown_percent(self, node: int, channel: str) -> Dict[int, float]:
        """Per-destination share (%) of ``node``'s egress (Fig. 18(B))."""
        totals = {
            d: stats.bits(self.packet_bits)
            for (s, d, c), stats in self.flows.items()
            if s == node and c == channel
        }
        grand = sum(totals.values())
        if grand == 0:
            return {}
        return {d: 100.0 * bits / grand for d, bits in sorted(totals.items())}

    def reset(self) -> None:
        """Clear all accumulated flows (e.g. at an iteration boundary)."""
        self.flows.clear()

    # -- cooldown throttling (paper Sec. 5.4) --------------------------------

    def cooldown_cycles_needed(
        self, peak_packets: int, window_cycles: int
    ) -> int:
        """Smallest per-packet cooldown spreading a burst over a window.

        The paper limits "the transmission of each board to once per
        several cycles using cooldown counters, effectively spreading out
        a peak over a period of time".  Sending ``peak_packets`` packets
        with a gap of ``c`` cycles takes ``(peak_packets - 1) * c + 1``
        cycles; the largest gap that still fits the window is returned
        (at least 1 = back-to-back).
        """
        if peak_packets <= 0:
            return window_cycles
        if peak_packets == 1:
            return window_cycles
        return max(1, (window_cycles - 1) // (peak_packets - 1))

    def peak_gbps_with_cooldown(
        self, cooldown_cycles: int, clock_hz: float
    ) -> float:
        """Instantaneous peak rate when one packet leaves per cooldown."""
        if cooldown_cycles < 1:
            raise ValidationError("cooldown must be >= 1 cycle")
        packets_per_second = clock_hz / cooldown_cycles
        return packets_per_second * self.packet_bits / 1e9

"""Shortest-path routing and per-link load analysis over any topology.

The hyper-ring discussion (paper Sec. 4.1) turns on *where the traffic
goes*: hyper-rings have poor bisection bandwidth, but FASDA's RL traffic
flows almost exclusively between spatially adjacent nodes (Fig. 18(B)),
so the links that would saturate under uniform traffic stay quiet.  This
module routes an arbitrary traffic matrix over a topology along BFS
shortest paths and reports per-link loads, letting the topology ablation
compare fabrics under the traffic pattern that actually occurs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.network.topology import Topology
from repro.util.errors import ValidationError

Link = Tuple[int, int]


def shortest_path(topology: Topology, src: int, dst: int) -> List[int]:
    """One BFS shortest path (deterministic: lowest-id tie-break)."""
    if src == dst:
        return [src]
    parent: Dict[int, int] = {src: -1}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        for nbr in sorted(topology.neighbors(node)):
            if nbr not in parent:
                parent[nbr] = node
                if nbr == dst:
                    path = [dst]
                    while parent[path[-1]] != -1:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(nbr)
    raise ValidationError(f"no path from {src} to {dst}")


@dataclass
class LinkLoadReport:
    """Outcome of routing a traffic matrix."""

    link_loads: Dict[Link, float]
    total_traffic: float

    @property
    def max_link_load(self) -> float:
        return max(self.link_loads.values()) if self.link_loads else 0.0

    @property
    def mean_link_load(self) -> float:
        if not self.link_loads:
            return 0.0
        return float(np.mean(list(self.link_loads.values())))

    @property
    def load_imbalance(self) -> float:
        """Max over mean link load (1.0 = perfectly spread)."""
        mean = self.mean_link_load
        return self.max_link_load / mean if mean else 0.0


def route_traffic(
    topology: Topology, traffic: Dict[Tuple[int, int], float]
) -> LinkLoadReport:
    """Route a (src, dst) -> volume matrix along shortest paths.

    Every link of the topology appears in the report (zero-load links
    included) so imbalance statistics are meaningful.
    """
    loads: Dict[Link, float] = {
        (a, b): 0.0 for a, b in topology.links()
    }
    total = 0.0
    for (src, dst), volume in traffic.items():
        if volume < 0:
            raise ValidationError("traffic volumes must be >= 0")
        if volume == 0 or src == dst:
            continue
        path = shortest_path(topology, src, dst)
        for a, b in zip(path[:-1], path[1:]):
            key = (min(a, b), max(a, b))
            if key not in loads:
                # SwitchTopology reports uplinks as (i, i); charge both
                # endpoints' uplinks for a 2-hop star crossing.
                if (a, a) in loads and (b, b) in loads:
                    loads[(a, a)] += volume / 2
                    loads[(b, b)] += volume / 2
                    continue
                raise ValidationError(f"path used unknown link {a}-{b}")
            loads[key] += volume
        total += volume
    return LinkLoadReport(link_loads=loads, total_traffic=total)


def fasda_traffic_matrix(
    fpga_grid: Tuple[int, int, int],
    position_records: Dict[Tuple[int, int], int],
) -> Dict[Tuple[int, int], float]:
    """Convert measured machine traffic into a routing matrix.

    Takes the per-(src, dst) record counts a
    :class:`~repro.core.machine.FasdaMachine` measures and returns them
    as float volumes (records per iteration).
    """
    return {pair: float(records) for pair, records in position_records.items()}

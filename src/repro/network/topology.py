"""Network topologies for inter-FPGA communication (paper Sec. 4.1).

All topologies expose the same interface: node count, neighbor sets,
shortest-path hop distances, and link enumeration.  The paper evaluates a
switch-connected cluster whose *logical* organization is a 3-D torus
matching the spatial decomposition; it argues hyper-rings (rings of
rings) are attractive because RL traffic is neighbor-dominated, so the
hyper-ring's weak distant-pair bandwidth is never exercised.  The
topology ablation bench quantifies exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.errors import ValidationError


class Topology:
    """Abstract undirected topology over nodes ``0..n-1``."""

    @property
    def n_nodes(self) -> int:
        raise NotImplementedError

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Directly connected nodes."""
        raise NotImplementedError

    def links(self) -> List[Tuple[int, int]]:
        """All undirected links as (low, high) pairs."""
        seen = set()
        for a in range(self.n_nodes):
            for b in self.neighbors(a):
                seen.add((min(a, b), max(a, b)))
        return sorted(seen)

    def hop_distance(self, src: int, dst: int) -> int:
        """Shortest-path hop count (BFS; topologies are small)."""
        if src == dst:
            return 0
        self._check(src)
        self._check(dst)
        frontier = [src]
        dist = {src: 0}
        while frontier:
            nxt = []
            for a in frontier:
                for b in self.neighbors(a):
                    if b not in dist:
                        dist[b] = dist[a] + 1
                        if b == dst:
                            return dist[b]
                        nxt.append(b)
            frontier = nxt
        raise ValidationError(f"nodes {src} and {dst} are disconnected")

    def diameter(self) -> int:
        """Maximum hop distance over all node pairs."""
        return max(
            self.hop_distance(a, b)
            for a in range(self.n_nodes)
            for b in range(a + 1, self.n_nodes)
        ) if self.n_nodes > 1 else 0

    def average_distance(self) -> float:
        """Mean hop distance over distinct pairs."""
        if self.n_nodes < 2:
            return 0.0
        pairs = [
            self.hop_distance(a, b)
            for a in range(self.n_nodes)
            for b in range(a + 1, self.n_nodes)
        ]
        return float(np.mean(pairs))

    def bisection_width(self) -> int:
        """Links crossing a balanced node-id bisection (lower-bound proxy).

        Exact bisection width is NP-hard in general; for the regular
        topologies here the id ordering is layout order and the straight
        cut is the canonical one reported in the literature.
        """
        half = self.n_nodes // 2
        left = set(range(half))
        return sum(1 for a, b in self.links() if (a in left) != (b in left))

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValidationError(f"node {node} out of range [0, {self.n_nodes})")


class RingTopology(Topology):
    """A simple bidirectional ring (hyper-ring of order 1)."""

    def __init__(self, n: int):
        if n < 2:
            raise ValidationError("ring needs at least 2 nodes")
        self._n = n

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbors(self, node: int) -> Tuple[int, ...]:
        self._check(node)
        if self._n == 2:
            return ((node + 1) % 2,)
        return ((node - 1) % self._n, (node + 1) % self._n)

    def hop_distance(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        d = abs(src - dst)
        return min(d, self._n - d)


class TorusTopology(Topology):
    """A k-dimensional torus; FASDA's logical organization (paper Fig. 8).

    Node ids follow the paper's cell-id convention (Eq. 7): x-major.
    Dimensions of extent 1 are allowed (degenerate); extent-2 dimensions
    contribute a single link (not a double link).
    """

    def __init__(self, dims: Sequence[int]):
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 1 for d in dims):
            raise ValidationError(f"torus dims must be positive, got {dims}")
        self.dims = dims
        self._strides = []
        stride = 1
        for d in reversed(dims):
            self._strides.append(stride)
            stride *= d
        self._strides = tuple(reversed(self._strides))
        self._n = int(np.prod(dims))

    @property
    def n_nodes(self) -> int:
        return self._n

    def node_id(self, coords: Sequence[int]) -> int:
        """Coordinate tuple -> node id (x-major, matching Eq. 7)."""
        if len(coords) != len(self.dims):
            raise ValidationError("coordinate rank mismatch")
        return int(sum(c * s for c, s in zip(coords, self._strides)))

    def node_coords(self, node: int) -> Tuple[int, ...]:
        """Node id -> coordinate tuple."""
        self._check(node)
        coords = []
        for s, d in zip(self._strides, self.dims):
            coords.append((node // s) % d)
        return tuple(coords)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        self._check(node)
        coords = self.node_coords(node)
        out = []
        for axis, extent in enumerate(self.dims):
            if extent == 1:
                continue
            deltas = (1,) if extent == 2 else (-1, 1)
            for delta in deltas:
                nbr = list(coords)
                nbr[axis] = (nbr[axis] + delta) % extent
                out.append(self.node_id(nbr))
        # Deduplicate while keeping order (extent-2 axes).
        seen: Dict[int, None] = {}
        for x in out:
            seen.setdefault(x)
        return tuple(seen)

    def hop_distance(self, src: int, dst: int) -> int:
        sc, dc = self.node_coords(src), self.node_coords(dst)
        total = 0
        for a, b, extent in zip(sc, dc, self.dims):
            d = abs(a - b)
            total += min(d, extent - d)
        return total


class SwitchTopology(Topology):
    """A star through a central switch: every pair is 2 hops apart.

    Models the paper's Dell Z9100-ON deployment where all QSFP28 ports
    connect to one 100 GbE switch.  The switch itself is not a node; we
    expose the any-to-any connectivity with uniform 2-hop distance and a
    per-node link into the switch.
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValidationError("switch cluster needs at least 2 nodes")
        self._n = n

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbors(self, node: int) -> Tuple[int, ...]:
        self._check(node)
        return tuple(x for x in range(self._n) if x != node)

    def hop_distance(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 2

    def links(self) -> List[Tuple[int, int]]:
        """The physical links are node<->switch; report one per node as
        (node, node) is meaningless, so enumerate logical pairs is wrong
        for cost. We report n links by convention (node uplinks)."""
        return [(i, i) for i in range(self._n)]


class HyperRingTopology(Topology):
    """A hyper-ring: rings of rings (Sibai 1998), order 2 by default.

    ``group_size`` nodes form a level-0 ring; ``n_groups`` such rings are
    themselves connected in a level-1 ring through one gateway node per
    group (node 0 of the group).  An order-3 hyper-ring nests once more.

    Parameters
    ----------
    group_size:
        Nodes per innermost ring.
    n_groups:
        Number of innermost rings per next-level ring (per level).
    order:
        Nesting depth; order 1 is a plain ring of ``group_size`` nodes.
    """

    def __init__(self, group_size: int, n_groups: int = 1, order: int = 2):
        if order < 1 or order > 3:
            raise ValidationError("hyper-ring order must be 1, 2, or 3")
        if group_size < 2:
            raise ValidationError("group_size must be >= 2")
        if order > 1 and n_groups < 2:
            raise ValidationError("n_groups must be >= 2 for order > 1")
        self.group_size = group_size
        self.n_groups = n_groups
        self.order = order
        self._n = group_size * (n_groups ** (order - 1))
        self._adj: Dict[int, set] = {i: set() for i in range(self._n)}
        self._build()

    def _build(self) -> None:
        def connect_ring(members: List[int]) -> None:
            m = len(members)
            if m == 2:
                self._link(members[0], members[1])
                return
            for i in range(m):
                self._link(members[i], members[(i + 1) % m])

        # Level 0: partition ids into consecutive groups of group_size.
        groups = [
            list(range(g * self.group_size, (g + 1) * self.group_size))
            for g in range(self._n // self.group_size)
        ]
        for g in groups:
            connect_ring(g)
        if self.order >= 2:
            # Level 1: gateways (first of each group) in rings of n_groups.
            gateways = [g[0] for g in groups]
            super_groups = [
                gateways[i : i + self.n_groups]
                for i in range(0, len(gateways), self.n_groups)
            ]
            for sg in super_groups:
                if len(sg) >= 2:
                    connect_ring(sg)
            if self.order == 3 and len(super_groups) >= 2:
                # Level 2: one gateway per super-group.
                connect_ring([sg[0] for sg in super_groups])

    def _link(self, a: int, b: int) -> None:
        self._adj[a].add(b)
        self._adj[b].add(a)

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbors(self, node: int) -> Tuple[int, ...]:
        self._check(node)
        return tuple(sorted(self._adj[node]))

"""Packet-level switch simulation — why cooldown counters exist.

Paper Sec. 5.4: "peaks in communication intensity could potentially
overwhelm the routing device such as a switch, causing packet loss, and
therefore we limit the transmission of each board to once per several
cycles using cooldown counters, effectively spreading out a peak over a
period of time."

This module simulates an output-queued switch at packet granularity:
each destination port drains at line rate and buffers a bounded number
of packets; simultaneous bursts from several sources toward one port
(the incast at the start of a position exchange) overflow the buffer
unless senders pace themselves.  The cooldown ablation sweeps the pacing
interval and reports the loss rate — zero at the paper's operating
point, catastrophic without pacing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.md.kernels import scatter_add
from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultInjector


@dataclass(frozen=True)
class Burst:
    """A paced packet train from one source to one destination.

    Attributes
    ----------
    src / dst:
        Node ids (dst selects the switch output port).
    n_packets:
        Packets in the train.
    gap_cycles:
        Cycles between consecutive packets (the cooldown; 1 = line-rate
        back-to-back).
    start_cycle:
        When the first packet is emitted.
    """

    src: int
    dst: int
    n_packets: int
    gap_cycles: int = 1
    start_cycle: int = 0

    def __post_init__(self) -> None:
        if self.n_packets < 0 or self.gap_cycles < 1 or self.start_cycle < 0:
            raise ValidationError("invalid burst specification")

    def emission_cycles(self) -> np.ndarray:
        """Cycle index of each packet's arrival at the switch."""
        return self.start_cycle + self.gap_cycles * np.arange(self.n_packets)


@dataclass
class SwitchStats:
    """Outcome of a switch simulation.

    ``dropped`` counts tail drops at a full output buffer; ``injected``
    counts packets a fault injector lost (or corrupted beyond the CRC)
    on the wire before they reached a port queue.
    """

    delivered: int
    dropped: int
    max_occupancy: Dict[int, int] = field(default_factory=dict)
    injected: int = 0
    #: Node-crash recoveries whose restore/replay traffic rode this
    #: fabric (merged additively, like the packet counters).
    recoveries: int = 0
    #: Committed elastic rescales whose planned migration traffic rode
    #: this fabric (merged additively, like ``recoveries``).
    rescales: int = 0

    @property
    def loss_rate(self) -> float:
        total = self.delivered + self.dropped + self.injected
        return (self.dropped + self.injected) / total if total else 0.0

    def __add__(self, other: "SwitchStats") -> "SwitchStats":
        """Merge two simulations' stats (multi-burst / multi-step sweeps).

        Counters add; per-port peak occupancies take the maximum (the
        merged figure answers "how deep did this buffer ever get").
        """
        if not isinstance(other, SwitchStats):
            return NotImplemented
        occ = dict(self.max_occupancy)
        for port, peak in other.max_occupancy.items():
            occ[port] = max(occ.get(port, 0), peak)
        return SwitchStats(
            delivered=self.delivered + other.delivered,
            dropped=self.dropped + other.dropped,
            max_occupancy=occ,
            injected=self.injected + other.injected,
            recoveries=self.recoveries + other.recoveries,
            rescales=self.rescales + other.rescales,
        )

    def __radd__(self, other):
        # Support sum(stats_list) starting from 0.
        if other == 0:
            return self
        return self.__add__(other)


class OutputQueuedSwitch:
    """An output-queued switch with finite per-port buffers.

    Parameters
    ----------
    n_nodes:
        Number of attached nodes (= output ports).
    drain_per_cycle:
        Packets one output port forwards per FPGA cycle.  At 200 MHz
        with 512-bit packets on a 100 GbE port this is
        ``100e9 / 512 / 200e6 ~ 0.977``.
    buffer_packets:
        Per-port buffer depth; packets arriving to a full buffer drop
        (tail drop, as a lossy UDP path would).
    """

    def __init__(
        self,
        n_nodes: int,
        drain_per_cycle: float = 100e9 / 512 / 200e6,
        buffer_packets: int = 64,
    ):
        if n_nodes < 2:
            raise ValidationError("switch needs at least 2 nodes")
        if drain_per_cycle <= 0 or buffer_packets < 1:
            raise ValidationError("invalid switch parameters")
        self.n_nodes = n_nodes
        self.drain_per_cycle = float(drain_per_cycle)
        self.buffer_packets = int(buffer_packets)

    def run(
        self,
        bursts: List[Burst],
        injector: Optional["FaultInjector"] = None,
        channel: str = "position",
        iteration: int = 0,
    ) -> SwitchStats:
        """Simulate until every emitted packet is delivered or dropped.

        With a fault ``injector``, each packet is additionally exposed
        to the plan's wire-loss processes (drop, and corruption — which
        the receiving NIC's CRC turns into loss) *before* it reaches its
        output queue; such packets are counted as
        :attr:`SwitchStats.injected`.  Decisions are keyed by
        (src, dst, channel, iteration) plus a per-flow burst sequence,
        so repeated runs are bitwise reproducible.
        """
        for b in bursts:
            for node in (b.src, b.dst):
                if not 0 <= node < self.n_nodes:
                    raise ValidationError(f"node {node} out of range")
        injected = 0
        flow_seq: Dict[Tuple[int, int], int] = {}
        # Per-port arrival counts per cycle.
        arrivals: Dict[int, np.ndarray] = {}
        horizon = 0
        for b in bursts:
            if b.n_packets == 0:
                continue
            cycles = b.emission_cycles()
            if injector is not None:
                seq = flow_seq.get((b.src, b.dst), 0)
                flow_seq[(b.src, b.dst)] = seq + 1
                drop, corrupt = injector.drop_corrupt_arrays(
                    b.src, b.dst, channel, iteration, b.n_packets, attempt=seq
                )
                lost = drop | corrupt
                injected += int(np.count_nonzero(lost))
                cycles = cycles[~lost]
                if len(cycles) == 0:
                    continue
            horizon = max(horizon, int(cycles[-1]) + 1)
            per_port = arrivals.setdefault(b.dst, np.zeros(0, dtype=np.int64))
            if len(per_port) < horizon:
                grown = np.zeros(horizon, dtype=np.int64)
                grown[: len(per_port)] = per_port
                arrivals[b.dst] = grown
            scatter_add(arrivals[b.dst], cycles.astype(np.int64))

        delivered = 0
        dropped = 0
        max_occ: Dict[int, int] = {}
        for port, counts in arrivals.items():
            occupancy = 0.0
            credit = 0.0
            peak = 0
            for arriving in counts:
                # Drain first (packets forwarded this cycle)...
                credit += self.drain_per_cycle
                sendable = int(min(np.floor(credit), np.ceil(occupancy)))
                sent = min(sendable, int(occupancy))
                occupancy -= sent
                credit -= sent
                delivered += sent
                # ...then accept arrivals up to the buffer limit.
                space = self.buffer_packets - int(occupancy)
                accepted = min(int(arriving), space)
                dropped += int(arriving) - accepted
                occupancy += accepted
                peak = max(peak, int(occupancy))
            # Drain the remainder after arrivals stop (no further loss).
            delivered += int(occupancy)
            max_occ[port] = peak
        return SwitchStats(
            delivered=delivered,
            dropped=dropped,
            max_occupancy=max_occ,
            injected=injected,
        )


def incast_loss_rate(
    n_senders: int,
    packets_per_sender: int,
    cooldown_cycles: int,
    buffer_packets: int = 64,
    drain_per_cycle: float = 100e9 / 512 / 200e6,
) -> Tuple[float, int]:
    """Loss rate and peak occupancy for a synchronized incast.

    All senders start a paced train toward node 0 at cycle 0 — the worst
    case at the beginning of a position exchange.

    Returns
    -------
    (loss_rate, max_occupancy)
    """
    switch = OutputQueuedSwitch(
        max(2, n_senders + 1),
        drain_per_cycle=drain_per_cycle,
        buffer_packets=buffer_packets,
    )
    bursts = [
        Burst(src=s + 1, dst=0, n_packets=packets_per_sender, gap_cycles=cooldown_cycles)
        for s in range(n_senders)
    ]
    stats = switch.run(bursts)
    return stats.loss_rate, stats.max_occupancy.get(0, 0)

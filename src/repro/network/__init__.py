"""Inter-FPGA network substrate: topologies and the fabric traffic model.

FASDA's nodes are logically organized as a 3-D torus matching the spatial
decomposition (paper Fig. 8) and physically connected either through a
network switch or directly as a hyper-ring (rings of rings).  This
package provides those topologies with hop/latency accounting, plus a
fabric model that converts per-iteration packet counts into the bandwidth
figures of paper Fig. 18.
"""

from repro.network.topology import (
    HyperRingTopology,
    RingTopology,
    SwitchTopology,
    Topology,
    TorusTopology,
)
from repro.network.fabric import Fabric, LinkStats

__all__ = [
    "Topology",
    "RingTopology",
    "TorusTopology",
    "SwitchTopology",
    "HyperRingTopology",
    "Fabric",
    "LinkStats",
]

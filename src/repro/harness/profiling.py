"""Phase-timed, bitwise-checked profiling of the machine/distributed step.

One entry point, :func:`run_profile`, drives the whole "where does a
step go" story used by ``repro profile``, the ``machine_phases``
section of ``benchmarks/bench_hotpath.py`` and the CI ``perf-machine``
leg:

* **Machine phase breakdown** — a :class:`~repro.core.machine.FasdaMachine`
  on the optimized configuration (persistent cell state + best
  available compiled backend + vectorized traffic) with
  :class:`~repro.core.timing.StepTimings` enabled, reporting per-phase
  seconds (build / force / traffic / ring / integrate) over full
  ``step()`` calls.
* **Bitwise oracle checks first, speed second** — before any timing,
  the optimized machine's full :class:`StepStats` and float32 force
  bank are asserted bitwise against the chunked/loop oracle (this
  transitively certifies the fused admission, ROM-eval and scatter
  kernels plus the group-by traffic and ring range-add paths); the
  accounting kernels (``traffic_flat`` / ``ring_charge``) are also
  checked head-to-head against their numpy references, the batched
  position exchange against the per-record loop, and the shared-memory
  process pool against the serial distributed run.
* **Rate metrics for the regression gate** — every throughput lands in
  a ``*_per_s`` key inside a ``points`` map, the exact shape
  :func:`repro.harness.campaign.check_regression` consumes, so CI can
  gate on a committed baseline with the usual 30% rule.

Everything here is measurement and assertion — no simulation state of
its own — so it lives in the harness layer.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.core.rings import RingLoadModel, RingPath
from repro.md.backends import (
    backend_status,
    resolve_backend,
    ring_charge_numpy,
    traffic_flat_numpy,
)
from repro.md.dataset import build_dataset

#: ~10k-particle box (the acceptance size) and the 2k smoke box.
DEFAULT_DIMS: Tuple[int, int, int] = (5, 5, 6)
SMOKE_DIMS: Tuple[int, int, int] = (3, 3, 3)

#: The machine phases StepTimings accounts, in report order.  ``ring``
#: is charged inside ``traffic`` (nested counters, not additive).
MACHINE_PHASES: Tuple[str, ...] = (
    "build", "force", "traffic", "ring", "integrate",
)
DISTRIBUTED_PHASES: Tuple[str, ...] = (
    "build", "exchange", "force", "integrate",
)


def _median_time(fn, reps: int) -> float:
    samples = []
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return sorted(samples)[len(samples) // 2]


def _fpga_grid_for(dims) -> tuple:
    """A >1-node partition that divides the box evenly."""
    for axis in (2, 1, 0):
        if dims[axis] % 2 == 0:
            grid = [1, 1, 1]
            grid[axis] = 2
            return tuple(grid)
    return (dims[0], 1, 1)


def _stats_signature(stats) -> dict:
    """Everything a StepStats asserts bitwise (timings excluded — they
    are wall-clock, not physics)."""
    return {
        "position_records": stats.position_records,
        "force_records": stats.force_records,
        "pr_load": {n: asdict(s) for n, s in stats.pr_load.items()},
        "fr_load": {n: asdict(s) for n, s in stats.fr_load.items()},
        "accepted": stats.accepted_per_cell.tolist(),
        "nbr_frc": stats.neighbor_force_records_per_cell.tolist(),
    }


def best_backend() -> str:
    """The fastest available force backend (compiled first)."""
    for name in ("cext", "numba", "soa"):
        if resolve_backend(name).name == name:
            return name
    return "numpy"


# ---------------------------------------------------------------------------
# Accounting-kernel equivalence (traffic_flat / ring_charge)
# ---------------------------------------------------------------------------


def check_accounting_kernels(force_impl: str) -> Dict[str, object]:
    """Assert the backend group-by and ring range-add against numpy.

    Covers the ``traffic_flat`` and ``ring_charge`` backend contracts
    head-to-head on adversarial synthetic inputs (duplicate keys,
    zero-hop spans, wrapped spans, both ring directions).  Raises
    AssertionError on any bitwise mismatch.
    """
    backend = resolve_backend(force_impl)
    rng = np.random.default_rng(20230814)
    n = 4096
    keys = rng.integers(0, 97, n)
    weights = rng.random(n)
    aux = rng.integers(0, 10_000, n)
    checked = {"traffic_flat": False, "ring_charge": False}

    if backend.traffic_flat is not None:
        for w, a in ((weights, aux), (None, aux), (weights, None), (None, None)):
            ru, rs, rm, rf = traffic_flat_numpy(keys, w, a)
            gu, gs, gm, gf = backend.traffic_flat(keys, w, a)
            assert np.array_equal(ru, gu), "traffic_flat: unique keys diverged"
            assert (rs is None) == (gs is None) and (
                rs is None or np.array_equal(rs, gs)
            ), "traffic_flat: weight sums diverged"
            assert (rm is None) == (gm is None) and (
                rm is None or np.array_equal(rm, gm)
            ), "traffic_flat: aux maxima diverged"
            assert np.array_equal(rf, gf), "traffic_flat: first rows diverged"
        checked["traffic_flat"] = True

    if backend.ring_charge is not None:
        for direction in (+1, -1):
            slots = 29
            k = 512
            src = rng.integers(0, slots, k)
            hops = rng.integers(0, slots, k)
            counts = rng.integers(0, 50, k)
            ref = np.zeros(slots, dtype=np.int64)
            live = (counts > 0) & (hops > 0)
            ring_charge_numpy(ref, direction, src[live], hops[live], counts[live])
            got = np.zeros(slots, dtype=np.int64)
            backend.ring_charge(got, direction, src[live], hops[live], counts[live])
            assert np.array_equal(ref, got), "ring_charge: link loads diverged"
            # And both against the per-record inject loop.
            model = RingLoadModel(RingPath(slots, direction))
            for s, h, c in zip(src[live], hops[live], counts[live]):
                d = (s + direction * h) % slots
                model.inject(int(s), int(d), int(c))
            assert np.array_equal(model.link_load, got), (
                "ring_charge: diverged from the per-record inject loop"
            )
        checked["ring_charge"] = True

    return checked


# ---------------------------------------------------------------------------
# Machine: oracle check, phase table, rates
# ---------------------------------------------------------------------------


def profile_machine(
    dims: Tuple[int, int, int],
    reps: int,
    force_impl: Optional[str] = None,
    phase_steps: int = 5,
) -> Dict[str, object]:
    """Phase-timed optimized machine step with loop-oracle bitwise gate.

    The optimized configuration is the full stack this repo has grown:
    persistent skin-banded cell state (``reuse_state``), the fused
    compiled admission + ROM-eval + scatter kernels of ``force_impl``
    (best available by default), group-by traffic accounting and the
    batched ring charge.  Its StepStats and float32 forces must match
    the chunked/loop oracle bitwise before anything is timed.
    """
    impl = force_impl or best_backend()
    fpga_grid = _fpga_grid_for(dims)

    mach = FasdaMachine(MachineConfig(dims, fpga_grid))
    mach.pair_path, mach.traffic_impl = "auto", "vectorized"
    mach.force_impl, mach.reuse_state = impl, True
    # Two oracles, two invariants: the chunked/loop oracle certifies
    # the full StepStats (admissions, traffic records, ring loads);
    # accumulation *order* differs there by design, so the float32
    # force bank — which certifies the fused admission/ROM-eval/scatter
    # kernels — is asserted against the vectorized numpy sequence.
    oracle = FasdaMachine(MachineConfig(dims, fpga_grid))
    oracle.pair_path, oracle.traffic_impl = "chunked", "loop"
    oracle.force_impl, oracle.reuse_state = "numpy", False
    ref = FasdaMachine(MachineConfig(dims, fpga_grid))
    ref.pair_path, ref.traffic_impl = "auto", "vectorized"
    ref.force_impl, ref.reuse_state = "numpy", False

    mach.compute_forces()  # warm: plan/table caches + band artifacts
    mach.compute_forces()
    s_opt = mach.compute_forces(collect_traffic=True)
    s_loop = oracle.compute_forces(collect_traffic=True)
    ref.compute_forces(collect_traffic=True)
    assert _stats_signature(s_opt) == _stats_signature(s_loop), (
        "optimized StepStats diverged from the chunked/loop oracle"
    )
    assert np.array_equal(mach.forces, ref.forces), (
        "fused-kernel float32 forces diverged from the numpy sequence"
    )

    t_opt = _median_time(
        lambda: mach.compute_forces(collect_traffic=True), reps
    )
    t_loop = _median_time(
        lambda: oracle.compute_forces(collect_traffic=True), max(1, reps // 2)
    )

    # Phase table over full step() calls (integrate included) with the
    # lightweight counters on; overhead is a perf_counter pair per
    # phase, far below timer resolution at these sizes.
    mach.timings.enabled = True
    mach.timings.reset()
    t0 = time.perf_counter()
    for _ in range(max(1, phase_steps)):
        mach.step(collect_traffic=True)
    wall = time.perf_counter() - t0
    snap = mach.timings.snapshot() or {}
    mach.timings.enabled = False
    phases = {
        name: snap.get(name, 0.0) / max(1, phase_steps)
        for name in MACHINE_PHASES
    }

    return {
        "dims": list(dims),
        "fpga_grid": list(fpga_grid),
        "n_particles": int(mach.system.n),
        "force_impl": impl,
        "reps": reps,
        "stats_match_loop_oracle": True,
        "forces_match_numpy_sequence": True,
        "machine_step_s": t_opt,
        "machine_step_loop_s": t_loop,
        "machine_step_per_s": 1.0 / t_opt,
        "machine_loop_per_s": 1.0 / t_loop,
        "speedup_vs_loop": t_loop / t_opt,
        "phase_steps": phase_steps,
        "phase_step_wall_s": wall / max(1, phase_steps),
        "phases_s": phases,
    }


# ---------------------------------------------------------------------------
# Distributed: exchange + shared-memory pool checks and rates
# ---------------------------------------------------------------------------


def profile_distributed(
    dims: Tuple[int, int, int],
    reps: int,
    traj_steps: int = 4,
) -> Dict[str, object]:
    """Serial vs shared-memory process pool, batched vs loop exchange.

    Asserts, bitwise: the batched position exchange against the
    per-record loop (same forces from the same positions), and a short
    ``parallel="process"`` trajectory — evaluated through the
    shared-memory segments when available — against the serial run
    (positions, velocities, float32 forces).  The >=1.3x process
    speedup claim only applies on multi-core hosts; ``cpu_count`` is
    recorded so gates can condition on it.
    """
    fpga_grid = _fpga_grid_for(dims)
    system, _ = build_dataset(dims, seed=2023)

    serial = DistributedMachine(
        MachineConfig(dims, fpga_grid), system=system.copy(), parallel=False
    )
    serial.compute_forces()
    f_batched = serial.forces.copy()
    serial.exchange_impl = "loop"
    serial.compute_forces()
    assert np.array_equal(f_batched, serial.forces), (
        "batched position exchange diverged from the per-record loop"
    )
    serial.exchange_impl = "batched"
    t_serial = _median_time(serial.compute_forces, reps)

    # Short trajectories: serial vs process pool over shared memory.
    s_traj = DistributedMachine(
        MachineConfig(dims, fpga_grid), system=system.copy(), parallel=False
    )
    p_traj = DistributedMachine(
        MachineConfig(dims, fpga_grid), system=system.copy(), parallel="process"
    )
    try:
        for _ in range(traj_steps):
            s_traj.step()
            p_traj.step()
        shm_active = bool(p_traj._shm_ok)
        assert np.array_equal(
            s_traj.system.positions, p_traj.system.positions
        ), "process-parallel positions diverged from serial"
        assert np.array_equal(s_traj.velocities, p_traj.velocities), (
            "process-parallel velocities diverged from serial"
        )
        assert np.array_equal(s_traj.forces, p_traj.forces), (
            "process-parallel float32 forces diverged from serial"
        )
        t_process = _median_time(p_traj.compute_forces, reps)
    finally:
        p_traj.close()

    snap = {}
    serial.timings.enabled = True
    serial.timings.reset()
    for _ in range(max(1, reps)):
        serial.step()
    snap = serial.timings.snapshot() or {}
    serial.timings.enabled = False
    phases = {
        name: snap.get(name, 0.0) / max(1, reps)
        for name in DISTRIBUTED_PHASES
    }

    return {
        "dims": list(dims),
        "fpga_grid": list(fpga_grid),
        "n_particles": int(system.n),
        "reps": reps,
        "cpu_count": os.cpu_count() or 1,
        "shm_active": shm_active,
        "exchange_batched_bitwise": True,
        "process_trajectory_bitwise": True,
        "distributed_step_s": t_serial,
        "distributed_step_process_s": t_process,
        "distributed_serial_per_s": 1.0 / t_serial,
        "distributed_process_per_s": 1.0 / t_process,
        "process_speedup": t_serial / t_process,
        "phases_s": phases,
    }


# ---------------------------------------------------------------------------
# Top-level document
# ---------------------------------------------------------------------------


def run_profile(
    smoke: bool = False,
    reps: Optional[int] = None,
    force_impl: Optional[str] = None,
    dims: Optional[Tuple[int, int, int]] = None,
) -> Dict[str, object]:
    """Assemble the full profile document (see the module docstring).

    The ``points`` map is shaped for
    :func:`repro.harness.campaign.check_regression`: each entry's
    ``result`` carries the ``*_per_s`` rates the 30% gate compares.
    """
    dims = tuple(dims) if dims else (SMOKE_DIMS if smoke else DEFAULT_DIMS)
    reps = reps if reps is not None else (1 if smoke else 5)
    impl = force_impl or best_backend()

    kernel_checks = check_accounting_kernels(impl)
    machine = profile_machine(
        dims, reps, force_impl=impl, phase_steps=2 if smoke else 5
    )
    distributed = profile_distributed(
        dims, max(1, reps if smoke else reps // 2),
        traj_steps=2 if smoke else 4,
    )

    label = f"{machine['n_particles']}p"
    return {
        "profile": "machine_phases",
        "smoke": smoke,
        "force_impl": impl,
        "backend_status": backend_status(),
        "kernel_checks": kernel_checks,
        "machine": machine,
        "distributed": distributed,
        "points": {
            f"machine_{label}": {
                "result": {
                    "machine_step_per_s": machine["machine_step_per_s"],
                    "machine_loop_per_s": machine["machine_loop_per_s"],
                }
            },
            f"distributed_{label}": {
                "result": {
                    "distributed_serial_per_s": distributed[
                        "distributed_serial_per_s"
                    ],
                }
            },
        },
    }


def format_profile(doc: Dict[str, object]) -> str:
    """Human-readable phase-breakdown table for a run_profile document."""
    m = doc["machine"]
    d = doc["distributed"]
    lines = [
        f"machine step ({m['n_particles']} particles, "
        f"force_impl={m['force_impl']}): "
        f"{m['machine_step_s'] * 1e3:.1f} ms "
        f"({m['machine_step_per_s']:.1f}/s), loop oracle "
        f"{m['machine_step_loop_s'] * 1e3:.1f} ms "
        f"-> {m['speedup_vs_loop']:.2f}x, bitwise ok",
        "  phase breakdown (per step, ring within traffic):",
    ]
    wall = m["phase_step_wall_s"]
    for name in MACHINE_PHASES:
        sec = m["phases_s"].get(name, 0.0)
        pct = 100.0 * sec / wall if wall > 0 else 0.0
        lines.append(f"    {name:<10s} {sec * 1e3:8.2f} ms  {pct:5.1f}%")
    lines.append(
        f"distributed step ({d['n_particles']} particles, "
        f"{int(np.prod(d['fpga_grid']))} nodes): serial "
        f"{d['distributed_step_s'] * 1e3:.1f} ms, process pool "
        f"{d['distributed_step_process_s'] * 1e3:.1f} ms "
        f"({d['process_speedup']:.2f}x, shm={d['shm_active']}, "
        f"{d['cpu_count']} cpu), bitwise ok"
    )
    for name in DISTRIBUTED_PHASES:
        sec = d["phases_s"].get(name, 0.0)
        lines.append(f"    {name:<10s} {sec * 1e3:8.2f} ms")
    return "\n".join(lines)

"""Crash-safe job service and batch former for many-system campaigns.

The screening workload the paper motivates (hundreds of small
replicas, each with its own step budget) maps onto
:class:`~repro.md.batch.BatchedEngine` through three pieces:

* :class:`JobQueue` — submit/status/result with priorities, per-job
  step budgets and optional wall-clock deadlines.  Input is hardened:
  duplicate submissions of the same system *object* are rejected,
  unknown ids raise :class:`~repro.util.errors.UnknownJobError`, and
  priority ties are strictly FIFO even across resubmission (ordering is
  by a monotonic enqueue sequence number, not by job id).
* :func:`run_jobs` — the batch former/scheduler: bin-packs queued jobs
  into an active batch (bounded by ``max_systems`` and optionally
  ``max_particles``), steps the fused engine in chunks, and swaps
  finished segments out / queued jobs in mid-campaign.  Because a swap
  never perturbs the other segments (see ``md/batch.py``), every job's
  trajectory is bitwise the one it would get running alone.
* The robustness layer (DESIGN.md §12): with a
  :class:`~repro.faults.health.GuardConfig` the engine quarantines
  poisoned tenants; the scheduler journals every job-state transition
  (queued/running/quarantined/preempted/done) to an append-only fsync
  JSONL, checkpoints the engine at chunk boundaries and each finished
  job's result to its own checkpoint-v2 file, enforces deadlines at
  chunk boundaries (preemption via checkpoint), and re-admits
  quarantined jobs from their last healthy snapshot at exponentially
  reduced dt until an attempt budget runs out.  A SIGKILLed service
  resumed with ``resume=True`` finishes with per-job results bitwise
  equal to an uninterrupted run: restores are bitwise, per-job
  trajectories are chunking-independent, and completed results are
  adopted from their durable files rather than recomputed.

:func:`run_batch_bench` is the measurement harness behind
``repro batch`` and the committed ``BENCH_batch.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.health import GuardConfig, REASON_INPUT
from repro.md.batch import BatchedEngine
from repro.md.cells import CellGrid
from repro.md.system import ParticleSystem
from repro.util.errors import (
    JobPoisonedError,
    UnknownJobError,
    ValidationError,
)

QUEUED = "queued"
RUNNING = "running"
QUARANTINED = "quarantined"
PREEMPTED = "preempted"
DONE = "done"

#: Every state a job can be journaled in.
JOB_STATES = (QUEUED, RUNNING, QUARANTINED, PREEMPTED, DONE)

#: Default ``batch_max_n`` solo-routing threshold.  The committed
#: BENCH_batch.json crossover: co-batching wins 4.3x at N=108 but drops
#: to 0.6x by N=432, so systems past ~256 particles step faster alone.
BATCH_MAX_N_DEFAULT = 256


@dataclass
class Job:
    """One queued system with a step budget."""

    job_id: int
    system: ParticleSystem
    grid: CellGrid
    steps: int
    priority: int = 0
    thermostat: object = None
    aux: dict = field(default_factory=dict)
    status: str = QUEUED
    steps_done: int = 0
    handle: Optional[int] = None
    result: Optional[ParticleSystem] = None
    final_potential: float = 0.0
    #: Monotonic enqueue sequence: priority ties run strictly FIFO by
    #: this, and a resubmission re-joins the back of its priority class.
    seq: int = 0
    #: Wall-clock deadline (seconds from admission) enforced at chunk
    #: boundaries; ``None`` = no deadline.
    deadline_s: Optional[float] = None
    #: Poisoned runs so far (also the retry-lane level of a requeue).
    attempts: int = 0
    #: Last poison record (``PoisonRecord.asdict()``), once quarantined.
    poison: Optional[dict] = None
    #: Preemption / retry-basis checkpoint path, when one was written.
    checkpoint_path: Optional[str] = None
    # -- scheduler internals -------------------------------------------------
    key: Optional[str] = None
    retry_system: Optional[ParticleSystem] = None
    retry_steps_done: int = 0
    admitted_clock: Optional[float] = None


def job_fingerprint(job: Job) -> str:
    """Content hash identifying a job across service restarts.

    Covers the submitted dynamic state, geometry, budget, priority and
    thermostat config — everything that determines the job's trajectory
    apart from engine-level settings (journaled once per service).
    Identical resubmissions are disambiguated by the scheduler with an
    occurrence suffix, so the journal key stays unique.
    """
    from repro.md.thermostat import thermostat_meta

    h = hashlib.sha256()
    for arr in (
        job.system.positions, job.system.velocities, job.system.species,
        job.system.box,
    ):
        h.update(arr.tobytes())
    h.update(
        json.dumps(
            {
                "steps": int(job.steps),
                "priority": int(job.priority),
                "grid_dims": list(job.grid.dims),
                "cell_edge": float(job.grid.cell_edge),
                "thermostat": thermostat_meta(job.thermostat),
            },
            sort_keys=True,
        ).encode()
    )
    return h.hexdigest()[:20]


class JobQueue:
    """Submit/status/result queue feeding the batch former.

    Higher ``priority`` is admitted first; ties run in enqueue order
    (strictly FIFO, stable under resubmission).  Jobs carry their own
    thermostat and opaque ``aux`` payload (carried through checkpoints
    by the batch engine).
    """

    def __init__(self):
        self._jobs: Dict[int, Job] = {}
        self._next_id = 0
        self._next_seq = 0
        # id(system) -> job_id of every submission; the queue keeps the
        # system reference alive, so the object id stays valid.
        self._by_object: Dict[int, int] = {}

    def submit(
        self,
        system: ParticleSystem,
        grid: CellGrid,
        steps: int,
        priority: int = 0,
        thermostat=None,
        aux: Optional[dict] = None,
        deadline_s: Optional[float] = None,
    ) -> int:
        if steps <= 0:
            raise ValidationError("job step budget must be positive")
        if deadline_s is not None and deadline_s <= 0:
            raise ValidationError("deadline_s must be positive when set")
        prior = self._by_object.get(id(system))
        if prior is not None:
            raise ValidationError(
                f"this exact system object is already submitted as job "
                f"{prior}; submit a copy (system.copy()) to run it again"
            )
        job = Job(
            self._next_id, system, grid, int(steps), int(priority),
            thermostat, dict(aux) if aux else {},
            deadline_s=deadline_s,
        )
        job.seq = self._next_seq
        self._next_seq += 1
        self._jobs[job.job_id] = job
        self._by_object[id(system)] = job.job_id
        self._next_id += 1
        return job.job_id

    def status(self, job_id: int) -> str:
        return self._job(job_id).status

    def result(self, job_id: int) -> ParticleSystem:
        job = self._job(job_id)
        if job.status == QUARANTINED:
            raise JobPoisonedError(
                f"job {job_id} was quarantined "
                f"(reason {job.poison['reason']!r} at step "
                f"{job.poison['step']} after {job.attempts} attempt(s)); "
                "it has no result",
                record=job.poison,
            )
        if job.status == PREEMPTED:
            raise ValidationError(
                f"job {job_id} was preempted at {job.steps_done} steps; "
                f"its state is checkpointed at {job.checkpoint_path!r} "
                "(resubmit_preempted() re-queues it)"
            )
        if job.status != DONE:
            raise ValidationError(
                f"job {job_id} is {job.status}, not {DONE}"
            )
        return job.result

    def final_potential(self, job_id: int) -> float:
        job = self._job(job_id)
        if job.status != DONE:
            raise ValidationError(f"job {job_id} is not {DONE}")
        return job.final_potential

    def pending(self) -> List[Job]:
        """Queued jobs in admission order: priority desc, then FIFO.

        FIFO is by enqueue sequence, so a requeued (retried) job joins
        the back of its priority class instead of jumping ahead on its
        old job id.
        """
        out = [j for j in self._jobs.values() if j.status == QUEUED]
        out.sort(key=lambda j: (-j.priority, j.seq))
        return out

    def running(self) -> List[Job]:
        return [j for j in self._jobs.values() if j.status == RUNNING]

    def unfinished(self) -> int:
        """Jobs still owed work (terminal states: done/quarantined/preempted)."""
        terminal = (DONE, QUARANTINED, PREEMPTED)
        return sum(1 for j in self._jobs.values() if j.status not in terminal)

    def quarantined(self) -> List[Job]:
        return [j for j in self._jobs.values() if j.status == QUARANTINED]

    def preempted(self) -> List[Job]:
        return [j for j in self._jobs.values() if j.status == PREEMPTED]

    def requeue(self, job: Job) -> None:
        """Put a job back in the queue at the tail of its priority class."""
        job.status = QUEUED
        job.handle = None
        job.seq = self._next_seq
        self._next_seq += 1

    def resubmit_preempted(self, job_id: int) -> None:
        """Re-queue a preempted job to continue from its checkpoint."""
        job = self._job(job_id)
        if job.status != PREEMPTED:
            raise ValidationError(
                f"job {job_id} is {job.status}, not {PREEMPTED}"
            )
        if job.checkpoint_path is not None:
            from repro.core.checkpoint import load_checkpoint_v2

            job.retry_system, _ = load_checkpoint_v2(job.checkpoint_path)
            job.retry_steps_done = job.steps_done
        job.deadline_s = None
        self.requeue(job)

    def _job(self, job_id: int) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job id {job_id}")


# ---------------------------------------------------------------------------
# The crash-safe scheduler (``run_jobs``)
# ---------------------------------------------------------------------------


class _JobJournal:
    """Append-only JSONL of job-state transitions, durable per line.

    Same discipline as the campaign journal: every appended event is
    flushed and fsynced before the scheduler proceeds, so any event the
    journal reports happened is durable even against SIGKILL.
    """

    def __init__(self, path: str):
        dirname = os.path.dirname(path)
        if dirname:
            os.makedirs(dirname, exist_ok=True)
        self.path = path
        self._fh = open(path, "a")

    def append(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()


def load_jobs_journal(path: str) -> List[Dict[str, Any]]:
    """Parse a jobs journal; tolerates the torn final line of a killed writer."""
    events: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return events
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if isinstance(event, dict) and "event" in event:
                events.append(event)
    return events


def _fs_safe(key: str) -> str:
    return key.replace("#", "-")


class _JobService:
    """One ``run_jobs`` invocation: lanes, journal, checkpoints, retries."""

    JOURNAL_NAME = "jobs.jsonl"

    def __init__(
        self,
        queue: JobQueue,
        force_impl: Optional[str],
        max_systems: int,
        max_particles: Optional[int],
        dt_fs: float,
        shift: bool,
        chunk_steps: int,
        engine: Optional[BatchedEngine],
        guard: Optional[GuardConfig],
        workdir: Optional[str],
        resume: bool,
        retry_attempts: int,
        retry_dt_factor: float,
        checkpoint_every: int,
        job_step_timeout: Optional[int],
        now_fn: Optional[Callable[[], float]],
        on_chunk: Optional[Callable[[int, BatchedEngine], None]],
        batch_max_n: Optional[int] = None,
    ):
        if max_systems < 1:
            raise ValidationError("max_systems must be >= 1")
        if chunk_steps < 1:
            raise ValidationError("chunk_steps must be >= 1")
        if retry_attempts < 0:
            raise ValidationError("retry_attempts must be >= 0")
        if not 0.0 < retry_dt_factor <= 1.0:
            raise ValidationError("retry_dt_factor must be in (0, 1]")
        if checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1")
        if resume and workdir is None:
            raise ValidationError("resume=True requires a workdir")
        if batch_max_n is not None and batch_max_n < 1:
            raise ValidationError("batch_max_n must be >= 1 or None")
        self.queue = queue
        self.force_impl = force_impl
        self.max_systems = max_systems
        self.max_particles = max_particles
        self.dt_fs = float(dt_fs)
        self.shift = bool(shift)
        self.chunk_steps = int(chunk_steps)
        self.engine = engine
        self.guard = guard
        self.workdir = workdir
        self.resume = bool(resume)
        self.retry_attempts = int(retry_attempts)
        self.retry_dt_factor = float(retry_dt_factor)
        self.checkpoint_every = int(checkpoint_every)
        self.job_step_timeout = job_step_timeout
        self.now_fn = now_fn or time.monotonic
        self.on_chunk = on_chunk
        self.batch_max_n = batch_max_n

        self.level = 0
        self.active: Dict[int, Job] = {}
        self.journal: Optional[_JobJournal] = None
        self.manager = None
        self.chunk_index = 0
        self._poison_seen = 0
        # Last healthy (chunk-boundary) snapshot per job key, for
        # retry re-admission: (system copy, steps_done at snapshot).
        self._healthy: Dict[str, Tuple[ParticleSystem, int]] = {}
        # Counters for the summary.
        self.total_steps = 0
        self.swaps = 0
        self.batches = 0
        self.n_quarantined = 0
        self.n_retries = 0
        self.n_preempted = 0
        self.n_adopted = 0
        self.poison_records: List[dict] = []

    # -- setup ---------------------------------------------------------------

    def _assign_keys(self) -> None:
        """Fingerprint every job; disambiguate identical resubmissions."""
        seen: Dict[str, int] = {}
        for job_id in sorted(self.queue._jobs):
            job = self.queue._jobs[job_id]
            if job.key is not None:
                continue
            base = job_fingerprint(job)
            occ = seen.get(base, 0)
            seen[base] = occ + 1
            job.key = f"{base}#{occ}"

    def _open_workdir(self) -> None:
        from repro.core.checkpoint import CheckpointManager

        os.makedirs(self.workdir, exist_ok=True)
        self.manager = CheckpointManager(
            self.workdir, interval=1, keep=3, prefix="engine"
        )
        journal_path = os.path.join(self.workdir, self.JOURNAL_NAME)
        fresh = not os.path.exists(journal_path)
        self.journal = _JobJournal(journal_path)
        if fresh:
            self.journal.append({
                "event": "service",
                "dt_fs": self.dt_fs,
                "force_impl": self.force_impl,
                "chunk_steps": self.chunk_steps,
                "guard": self.guard is not None,
            })

    def _adopt_journal(self) -> None:
        """Restore job states and the latest engine from a prior run."""
        from repro.core.checkpoint import CheckpointError

        events = load_jobs_journal(
            os.path.join(self.workdir, self.JOURNAL_NAME)
        )
        by_key = {j.key: j for j in self.queue._jobs.values()}
        for ev in events:
            job = by_key.get(ev.get("key"))
            if job is None:
                continue
            kind = ev["event"]
            if kind == "done":
                try:
                    from repro.core.checkpoint import load_checkpoint_v2

                    job.result, _ = load_checkpoint_v2(ev["result_path"])
                except CheckpointError:
                    continue  # unreadable result: recompute (bitwise equal)
                job.status = DONE
                job.steps_done = int(ev["steps_done"])
                job.final_potential = float(ev["final_potential"])
                job.attempts = int(ev.get("attempt", 0))
                self.n_adopted += 1
            elif kind == "quarantined":
                job.attempts = int(ev["attempt"])
                job.poison = ev["record"]
                if ev.get("retry"):
                    self._adopt_retry_basis(job, ev)
                    self.queue.requeue(job)
                    self.n_retries += 1
                else:
                    job.status = QUARANTINED
                    self.n_quarantined += 1
                    self.poison_records.append(ev["record"])
            elif kind == "preempted":
                job.status = PREEMPTED
                job.steps_done = int(ev["steps_done"])
                job.checkpoint_path = ev["checkpoint_path"]
                self.n_preempted += 1
        self._restore_engine()

    def _adopt_retry_basis(self, job: Job, ev: Dict[str, Any]) -> None:
        """Load the healthy snapshot a pending retry re-admits from.

        The basis file is written (atomically) *before* its journal
        line, so a journaled retry always finds its basis; the npz
        round-trip is exact, matching the live run's in-memory snapshot
        bitwise.
        """
        from repro.core.checkpoint import load_checkpoint_v2

        basis_path = ev.get("basis_path")
        if basis_path:
            job.retry_system, _ = load_checkpoint_v2(basis_path)
            job.retry_steps_done = int(ev.get("basis_steps", 0))
        else:
            job.retry_system = None
            job.retry_steps_done = 0

    def _restore_engine(self) -> None:
        """Load the newest engine checkpoint and re-adopt its segments.

        Segments are matched to jobs by the ``_job`` tag the scheduler
        plants in each segment's aux payload — the checkpoint is
        self-describing, so no journal/checkpoint write-ordering race
        can orphan a segment.  Segments of jobs already terminal in the
        journal (their events are durable before any checkpoint that
        could drop them) are swapped out; removal never perturbs the
        adopted survivors.
        """
        from repro.core.checkpoint import CheckpointError

        try:
            be, _, path = self.manager.load_latest()
        except CheckpointError:
            return  # no (loadable) checkpoint: all non-terminal jobs re-run
        by_key = {j.key: j for j in self.queue._jobs.values()}
        adopted_level = None
        for handle in list(be.handles()):
            tag = be._by_handle[handle].aux.get("_job")
            job = by_key.get(tag["key"]) if tag else None
            if job is None or job.status != QUEUED:
                # Done/quarantined/preempted after this snapshot (their
                # journal events are durable), or not resubmitted.
                be.remove(handle)
                continue
            job.status = RUNNING
            job.handle = handle
            job.attempts = int(tag.get("attempt", 0))
            job.steps_done = int(tag.get("steps_base", 0)) + be.segment_steps(handle)
            adopted_level = job.attempts
        if be.n_segments == 0:
            return
        # Guard policy is the service's, not trajectory state: re-apply
        # it to the restored engine (guard buffers are built at the
        # repack the restore already owes, and guards never perturb the
        # trajectory, so this is bitwise-neutral).
        be.guard = self.guard
        self.engine = be
        self.level = adopted_level or 0
        for step, p in self.manager.checkpoints():
            if p == path:
                self.chunk_index = step

    # -- lanes ---------------------------------------------------------------

    def _lane_dt(self, level: int) -> float:
        return self.dt_fs * (self.retry_dt_factor ** level)

    def _make_engine(self, level: int) -> BatchedEngine:
        return BatchedEngine(
            dt_fs=self._lane_dt(level), shift=self.shift,
            force_impl=self.force_impl, guard=self.guard,
        )

    def _next_level(self) -> Optional[int]:
        levels = {j.attempts for j in self.queue.pending()}
        return min(levels) if levels else None

    def run(self) -> dict:
        self._assign_keys()
        if self.workdir is not None:
            self._open_workdir()
            if self.resume:
                self._adopt_journal()
        t0 = time.perf_counter()
        if self.engine is not None:
            # Adopt RUNNING jobs into the active set (journal resume set
            # them up above; a caller-restored engine relies on the
            # caller having marked its jobs RUNNING with live handles).
            for job in self.queue.running():
                if job.handle is None or job.handle not in self.engine._by_handle:
                    raise ValidationError(
                        f"running job {job.job_id} has no live segment "
                        "in the engine"
                    )
                self.active[job.handle] = job
                if job.key is not None:
                    self._stash_healthy(job)
        while True:
            fresh = False
            if self.engine is None:
                level = self._next_level()
                if level is None:
                    break
                self.level = level
                self.engine = self._make_engine(level)
                self._poison_seen = 0
                fresh = True
            progressed = self._drain_lane()
            self.engine = None
            if fresh and not progressed:
                # Nothing in this lane can be admitted (e.g. a job
                # larger than max_particles): leave it queued rather
                # than spin — same contract as the plain batch former.
                break
        wall = time.perf_counter() - t0
        if self.journal is not None:
            self.journal.close()
        done = sum(
            1 for j in self.queue._jobs.values() if j.status == DONE
        )
        summary = {
            "jobs_done": done,
            "total_steps": self.total_steps,
            "batches_formed": self.batches,
            "swaps": self.swaps,
            "wall_s": wall,
            "aggregate_steps_per_s": (
                self.total_steps / wall if wall > 0 else 0.0
            ),
            "backend": self._backend_name(),
            "chunks": self.chunk_index,
            "quarantined": self.n_quarantined,
            "retries": self.n_retries,
            "preempted": self.n_preempted,
            "adopted_done": self.n_adopted,
            "poison_records": list(self.poison_records),
            "journal": (
                os.path.join(self.workdir, self.JOURNAL_NAME)
                if self.workdir is not None else None
            ),
        }
        return summary

    def _backend_name(self) -> str:
        if self.engine is not None:
            return self.engine.backend_name
        from repro.md.backends import resolve_backend

        return resolve_backend(self.force_impl).name

    # -- the chunk loop ------------------------------------------------------

    def _job_n(self, job: Job) -> int:
        system = job.retry_system if job.retry_system is not None else job.system
        return system.n

    def _admit(self) -> int:
        """Bin-pack pending jobs of the current lane into free capacity.

        Systems above ``batch_max_n`` are routed solo: batching loses for
        them (the committed BENCH_batch.json crossover — N=432 runs at
        0.6x co-batched), so a big job only enters an empty engine and
        owns it until it drains.
        """
        admitted = 0
        engine = self.engine
        if self.batch_max_n is not None and any(
            self._job_n(j) > self.batch_max_n for j in self.active.values()
        ):
            return 0  # a solo big job owns the engine until it finishes
        for job in self.queue.pending():
            if job.attempts != self.level:
                continue
            if len(self.active) >= self.max_systems:
                break
            system = (
                job.retry_system if job.retry_system is not None
                else job.system
            )
            solo = (
                self.batch_max_n is not None and system.n > self.batch_max_n
            )
            if solo and (self.active or admitted):
                # Revisited once the engine is empty again.
                continue
            if (
                self.max_particles is not None
                and engine.n_particles + system.n > self.max_particles
            ):
                # First-fit: a big job does not block smaller ones.
                continue
            steps_base = (
                job.retry_steps_done if job.retry_system is not None else 0
            )
            aux = dict(job.aux)
            aux["_job"] = {
                "key": job.key,
                "job_id": job.job_id,
                "attempt": job.attempts,
                "steps_base": steps_base,
            }
            try:
                handle = engine.add(
                    system, job.grid, thermostat=job.thermostat, aux=aux,
                )
            except JobPoisonedError as exc:
                # Corrupt upload: rejected at the door, never retried
                # (the submitted state itself is non-finite).
                self._quarantine_terminal(job, exc.record.asdict())
                continue
            job.handle = handle
            job.status = RUNNING
            job.steps_done = steps_base
            job.admitted_clock = self.now_fn()
            self.active[handle] = job
            self._stash_healthy(job)
            admitted += 1
            if solo:
                break
        return admitted

    def _drain_lane(self) -> bool:
        progressed = bool(self.active)
        while True:
            admitted = self._admit()
            if admitted:
                self.batches += 1
                progressed = True
            if not self.active:
                return progressed
            chunk = min(
                self.chunk_steps,
                min(j.steps - j.steps_done for j in self.active.values()),
            )
            self.engine.step(chunk)
            self.total_steps += chunk * len(self.active)
            self.chunk_index += 1
            self._handle_poisoned()
            self._handle_finished(chunk)
            self._handle_deadlines()
            self._boundary_persist()
            if self.on_chunk is not None:
                self.on_chunk(self.chunk_index, self.engine)

    def _handle_poisoned(self) -> None:
        records = self.engine.poison_log[self._poison_seen:]
        self._poison_seen = len(self.engine.poison_log)
        for rec in records:
            job = self.active.pop(rec.handle, None)
            if job is None:
                continue
            job.attempts += 1
            tag_base = job.retry_steps_done if job.retry_system is not None else 0
            job.steps_done = tag_base + rec.segment_steps
            record = rec.asdict()
            record["job_id"] = job.job_id
            retry = (
                job.attempts <= self.retry_attempts
                and rec.reason != REASON_INPUT
            )
            if retry:
                self._schedule_retry(job, record)
            else:
                self._quarantine_terminal(job, record)

    def _schedule_retry(self, job: Job, record: dict) -> None:
        """Re-queue from the last healthy snapshot at reduced dt."""
        basis = self._healthy.get(job.key)
        if basis is not None:
            job.retry_system, job.retry_steps_done = basis
        else:
            job.retry_system = None
            job.retry_steps_done = 0
        basis_path = None
        if self.journal is not None:
            if job.retry_system is not None:
                from repro.core.checkpoint import save_checkpoint_v2

                basis_path = os.path.join(
                    self.workdir,
                    f"retry-{_fs_safe(job.key)}-a{job.attempts}.npz",
                )
                save_checkpoint_v2(job.retry_system, basis_path)
            self.journal.append({
                "event": "quarantined",
                "key": job.key,
                "job_id": job.job_id,
                "attempt": job.attempts,
                "record": record,
                "retry": True,
                "basis_path": basis_path,
                "basis_steps": job.retry_steps_done,
                "retry_dt_fs": self._lane_dt(job.attempts),
            })
        job.poison = record
        self.queue.requeue(job)
        self.n_retries += 1

    def _quarantine_terminal(self, job: Job, record: dict) -> None:
        job.status = QUARANTINED
        job.poison = record
        job.handle = None
        self.n_quarantined += 1
        self.poison_records.append(record)
        if self.journal is not None:
            self.journal.append({
                "event": "quarantined",
                "key": job.key,
                "job_id": job.job_id,
                "attempt": job.attempts,
                "record": record,
                "retry": False,
            })

    def _handle_finished(self, chunk: int) -> None:
        finished = []
        for handle, job in self.active.items():
            job.steps_done += chunk
            if job.steps_done >= job.steps:
                finished.append(handle)
        if not finished:
            return
        pots = self.engine.potentials()
        for handle in finished:
            job = self.active.pop(handle)
            job.final_potential = pots[handle]
            job.result = self.engine.remove(handle)
            job.status = DONE
            job.handle = None
            self.swaps += 1
            self._healthy.pop(job.key, None)
            if self.journal is not None:
                from repro.core.checkpoint import save_checkpoint_v2

                result_path = os.path.join(
                    self.workdir, f"result-{_fs_safe(job.key)}.npz"
                )
                save_checkpoint_v2(job.result, result_path)
                self.journal.append({
                    "event": "done",
                    "key": job.key,
                    "job_id": job.job_id,
                    "steps_done": job.steps_done,
                    "final_potential": job.final_potential,
                    "result_path": result_path,
                    "attempt": job.attempts,
                    "dt_fs": self._lane_dt(self.level),
                })

    def _handle_deadlines(self) -> None:
        """Preempt over-budget jobs (wall deadline or step timeout)."""
        now = self.now_fn()
        over = []
        for handle, job in self.active.items():
            if (
                job.deadline_s is not None
                and job.admitted_clock is not None
                and now - job.admitted_clock > job.deadline_s
            ):
                over.append(handle)
            elif (
                self.job_step_timeout is not None
                and job.steps_done >= self.job_step_timeout
            ):
                over.append(handle)
        for handle in over:
            job = self.active.pop(handle)
            state = self.engine.remove(handle)
            job.status = PREEMPTED
            job.handle = None
            self.swaps += 1
            self.n_preempted += 1
            self._healthy.pop(job.key, None)
            if self.journal is not None:
                from repro.core.checkpoint import save_checkpoint_v2

                ckpt = os.path.join(
                    self.workdir, f"preempt-{_fs_safe(job.key)}.npz"
                )
                save_checkpoint_v2(state, ckpt)
                job.checkpoint_path = ckpt
                self.journal.append({
                    "event": "preempted",
                    "key": job.key,
                    "job_id": job.job_id,
                    "steps_done": job.steps_done,
                    "checkpoint_path": ckpt,
                })
            else:
                job.retry_system = state
                job.retry_steps_done = job.steps_done

    def _boundary_persist(self) -> None:
        """Engine checkpoint + healthy-snapshot refresh at the boundary.

        Write order matters: result/quarantine/preempt events above are
        already durable, so an engine checkpoint can only ever be
        *behind* the journal — a resume then replays forward
        deterministically, never invents state.
        """
        if self.manager is not None and self.active:
            if self.chunk_index % self.checkpoint_every == 0:
                self.manager.save(self.engine, self.chunk_index)
        if self.guard is not None and self.retry_attempts > 0:
            for job in self.active.values():
                self._stash_healthy(job)

    def _stash_healthy(self, job: Job) -> None:
        if self.guard is None or self.retry_attempts == 0:
            return
        self._healthy[job.key] = (
            self.engine.extract(job.handle), job.steps_done
        )


def run_jobs(
    queue: JobQueue,
    force_impl: Optional[str] = None,
    max_systems: int = 64,
    max_particles: Optional[int] = None,
    dt_fs: float = 2.0,
    shift: bool = False,
    chunk_steps: int = 50,
    engine: Optional[BatchedEngine] = None,
    guard: Optional[GuardConfig] = None,
    workdir: Optional[str] = None,
    resume: bool = False,
    retry_attempts: int = 0,
    retry_dt_factor: float = 0.5,
    checkpoint_every: int = 1,
    job_step_timeout: Optional[int] = None,
    now_fn: Optional[Callable[[], float]] = None,
    on_chunk: Optional[Callable[[int, BatchedEngine], None]] = None,
    batch_max_n: Optional[int] = BATCH_MAX_N_DEFAULT,
) -> dict:
    """Drain a job queue through one batched engine, crash-safely.

    Steps the active batch in chunks of
    ``min(chunk_steps, smallest remaining budget)`` so every job stops
    exactly on its budget; finished segments are swapped out and the
    freed capacity immediately refilled from the queue.  Returns a
    summary dict (jobs completed, total steps, batches formed, wall
    time, quarantine/retry/preemption counters).

    Robustness knobs (all optional — defaults reproduce the plain
    batch former):

    * ``guard`` — enable the per-segment health guards; poisoned jobs
      are quarantined instead of taking the batch down.
    * ``workdir`` — journal every job-state transition to
      ``workdir/jobs.jsonl`` (append-only, fsync per line), checkpoint
      the engine at chunk boundaries, and write each finished job's
      result to its own checkpoint-v2 file.  With ``resume=True`` a
      killed service continues from the journal: completed jobs are
      adopted from their durable results, mid-flight segments from the
      newest engine checkpoint, and everything else re-runs — final
      per-job results are bitwise equal to an uninterrupted run.
    * ``retry_attempts`` / ``retry_dt_factor`` — re-admit a quarantined
      job from its last healthy chunk-boundary snapshot at
      ``dt * factor^attempt`` (exponential backoff) until the budget
      runs out; each attempt level drains in its own engine lane.
    * per-job ``deadline_s`` (see :meth:`JobQueue.submit`) and
      ``job_step_timeout`` — enforced at chunk boundaries; over-budget
      jobs are preempted via checkpoint, not killed.

    Pass ``engine`` to resume a caller-restored batch checkpoint: its
    live segments are matched to RUNNING jobs by handle.

    ``batch_max_n`` routes systems bigger than the threshold to solo
    execution (they enter only an empty engine and block co-admission
    while active) — co-batching loses above the measured crossover.
    ``None`` disables the routing.
    """
    service = _JobService(
        queue, force_impl, max_systems, max_particles, dt_fs, shift,
        chunk_steps, engine, guard, workdir, resume, retry_attempts,
        retry_dt_factor, checkpoint_every, job_step_timeout, now_fn,
        on_chunk, batch_max_n=batch_max_n,
    )
    return service.run()


# ---------------------------------------------------------------------------
# benchmark harness (``repro batch`` / BENCH_batch.json)
# ---------------------------------------------------------------------------

#: Per-system sizes of the default sweep: particles-per-cell at a
#: (3, 3, 3) grid, spanning the amortization-friendly small end up to
#: the kernel-bound saturation region (N = 54 .. 432).
BENCH_PPC = (2, 4, 16)


def _bench_point(
    force_impl: Optional[str],
    k_systems: int,
    ppc: int,
    steps: int,
    warm_steps: int,
    serial_sample: int,
    seed: int,
) -> dict:
    from repro.md.dataset import build_dataset
    from repro.md.engine import ReferenceEngine
    from repro.md.pairplan import clear_plan_cache, plan_cache_info

    systems = [
        build_dataset((3, 3, 3), cutoff=8.5, particles_per_cell=ppc,
                      seed=seed + i)
        for i in range(k_systems)
    ]
    n_per = systems[0][0].n

    # Cold: batch formation with an empty plan cache (priming included).
    clear_plan_cache()
    engine = BatchedEngine(force_impl=force_impl)
    t0 = time.perf_counter()
    for sysv, grid in systems:
        engine.add(sysv.copy(), grid)
    engine.prime()
    cold_wall = time.perf_counter() - t0
    cold_cache = plan_cache_info()._asdict()

    # Warm: steady-state stepping past the post-build honeymoon.
    engine.step(warm_steps)
    t0 = time.perf_counter()
    engine.step(steps)
    wall = time.perf_counter() - t0
    warm_cache = plan_cache_info()._asdict()
    batched_rate = k_systems * steps / wall
    builds = sum(engine.state_builds(h) for h in engine.handles())

    # Serial baseline: solo ReferenceEngine on the same backend.  For
    # large K a sample of systems is timed and the mean extrapolated;
    # ``serial_sampled`` records how many actually ran.
    sample = min(serial_sample, k_systems)
    serial_wall = 0.0
    for sysv, grid in systems[:sample]:
        eng = ReferenceEngine(
            sysv.copy(), grid, reuse_state=True, force_impl=force_impl
        )
        eng.run(warm_steps + 1, record_every=0)
        t0 = time.perf_counter()
        eng.run(steps, record_every=0)
        serial_wall += time.perf_counter() - t0
    serial_rate = steps / (serial_wall / sample)
    return {
        "k_systems": k_systems,
        "n_per_system": n_per,
        "particles_per_cell": ppc,
        "steps": steps,
        "backend": engine.backend_name,
        "state_builds_total": builds,
        "serial_sampled": sample,
        "formation_wall_s": cold_wall,
        "plan_cache_cold": cold_cache,
        "plan_cache_warm": warm_cache,
        # Speedup deliberately has no rate suffix: the regression gate
        # watches the aggregate rates, not the machine-dependent ratio.
        "speedup_vs_serial": batched_rate / serial_rate,
        "timing": {
            "aggregate_steps_per_s": batched_rate,
            "serial_aggregate_steps_per_s": serial_rate,
        },
    }


def run_batch_bench(
    force_impl: Optional[str] = None,
    k_systems: int = 256,
    steps: int = 30,
    warm_steps: int = 10,
    serial_sample: int = 6,
    seed: int = 2023,
    ppc_list=BENCH_PPC,
    smoke: bool = False,
) -> dict:
    """Measure batched vs serial aggregate throughput; returns the doc.

    ``smoke`` shrinks to the CI configuration: K=64, the smallest
    system size only, fewer steps.  The result layout mirrors
    ``BENCH_campaign.json`` (``points[...]["result"]["timing"]``) so
    :func:`repro.harness.campaign.check_regression` gates it unchanged.
    """
    if smoke:
        k_systems = min(k_systems, 64)
        steps = min(steps, 20)
        ppc_list = ppc_list[:1]
    points = {}
    for ppc in ppc_list:
        label = f"k{k_systems}_ppc{ppc}"
        points[label] = {
            "result": _bench_point(
                force_impl, k_systems, ppc, steps, warm_steps,
                serial_sample, seed,
            )
        }
    best = max(p["result"]["speedup_vs_serial"] for p in points.values())
    doc = {
        "bench": "batch",
        "smoke": bool(smoke),
        "seed": seed,
        "k_systems": k_systems,
        "steps": steps,
        "points": points,
        "summary": {
            "backend": next(iter(points.values()))["result"]["backend"],
            "best_speedup_vs_serial": best,
        },
    }
    return doc


def format_batch(doc: dict) -> str:
    lines = [
        "batched stepping bench "
        f"(K={doc['k_systems']}, {doc['steps']} steps, "
        f"backend={doc['summary']['backend']}"
        + (", smoke)" if doc.get("smoke") else ")"),
    ]
    for label, point in doc["points"].items():
        r = point["result"]
        t = r["timing"]
        lines.append(
            f"  {label:>12s}  N={r['n_per_system']:<5d} "
            f"batched {t['aggregate_steps_per_s']:10.0f} steps/s   "
            f"serial {t['serial_aggregate_steps_per_s']:8.0f} steps/s   "
            f"speedup {r['speedup_vs_serial']:5.2f}x"
        )
    lines.append(
        f"  best speedup {doc['summary']['best_speedup_vs_serial']:.2f}x"
    )
    return "\n".join(lines)

"""Job queue and batch former for many-system throughput campaigns.

The screening workload the paper motivates (hundreds of small
replicas, each with its own step budget) maps onto
:class:`~repro.md.batch.BatchedEngine` through two pieces:

* :class:`JobQueue` — a minimal submit/status/result queue with
  priorities and per-job step budgets.
* :func:`run_jobs` — the batch former: bin-packs queued jobs into an
  active batch (bounded by ``max_systems`` and optionally
  ``max_particles``), steps the fused engine, and swaps finished
  segments out / queued jobs in mid-campaign.  Because a swap never
  perturbs the other segments (see ``md/batch.py``), every job's
  trajectory is bitwise the one it would get running alone.

:func:`run_batch_bench` is the measurement harness behind
``repro batch`` and the committed ``BENCH_batch.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.md.batch import BatchedEngine
from repro.md.cells import CellGrid
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError

QUEUED = "queued"
RUNNING = "running"
DONE = "done"


@dataclass
class Job:
    """One queued system with a step budget."""

    job_id: int
    system: ParticleSystem
    grid: CellGrid
    steps: int
    priority: int = 0
    thermostat: object = None
    aux: dict = field(default_factory=dict)
    status: str = QUEUED
    steps_done: int = 0
    handle: Optional[int] = None
    result: Optional[ParticleSystem] = None
    final_potential: float = 0.0


class JobQueue:
    """Submit/status/result queue feeding the batch former.

    Higher ``priority`` is admitted first; ties run in submission
    order.  Jobs carry their own thermostat and opaque ``aux`` payload
    (carried through checkpoints by the batch engine).
    """

    def __init__(self):
        self._jobs: Dict[int, Job] = {}
        self._next_id = 0

    def submit(
        self,
        system: ParticleSystem,
        grid: CellGrid,
        steps: int,
        priority: int = 0,
        thermostat=None,
        aux: Optional[dict] = None,
    ) -> int:
        if steps <= 0:
            raise ValidationError("job step budget must be positive")
        job = Job(
            self._next_id, system, grid, int(steps), int(priority),
            thermostat, dict(aux) if aux else {},
        )
        self._jobs[job.job_id] = job
        self._next_id += 1
        return job.job_id

    def status(self, job_id: int) -> str:
        return self._job(job_id).status

    def result(self, job_id: int) -> ParticleSystem:
        job = self._job(job_id)
        if job.status != DONE:
            raise ValidationError(
                f"job {job_id} is {job.status}, not {DONE}"
            )
        return job.result

    def final_potential(self, job_id: int) -> float:
        job = self._job(job_id)
        if job.status != DONE:
            raise ValidationError(f"job {job_id} is not {DONE}")
        return job.final_potential

    def pending(self) -> List[Job]:
        """Queued jobs in admission order: priority desc, then FIFO."""
        out = [j for j in self._jobs.values() if j.status == QUEUED]
        out.sort(key=lambda j: (-j.priority, j.job_id))
        return out

    def running(self) -> List[Job]:
        return [j for j in self._jobs.values() if j.status == RUNNING]

    def unfinished(self) -> int:
        return sum(1 for j in self._jobs.values() if j.status != DONE)

    def _job(self, job_id: int) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ValidationError(f"unknown job id {job_id}")


def _admit(queue: JobQueue, engine: BatchedEngine, active: Dict[int, Job],
           max_systems: int, max_particles: Optional[int]) -> int:
    """Bin-pack pending jobs into the engine's free capacity."""
    admitted = 0
    for job in queue.pending():
        if len(active) >= max_systems:
            break
        if (
            max_particles is not None
            and engine.n_particles + job.system.n > max_particles
        ):
            # First-fit: a big job does not block smaller ones behind it.
            continue
        handle = engine.add(
            job.system, job.grid, thermostat=job.thermostat, aux=job.aux
        )
        job.handle = handle
        job.status = RUNNING
        active[handle] = job
        admitted += 1
    return admitted


def run_jobs(
    queue: JobQueue,
    force_impl: Optional[str] = None,
    max_systems: int = 64,
    max_particles: Optional[int] = None,
    dt_fs: float = 2.0,
    shift: bool = False,
    chunk_steps: int = 50,
    engine: Optional[BatchedEngine] = None,
) -> dict:
    """Drain a job queue through one batched engine.

    Steps the active batch in chunks of
    ``min(chunk_steps, smallest remaining budget)`` so every job stops
    exactly on its budget; finished segments are swapped out and the
    freed capacity immediately refilled from the queue.  Returns a
    summary dict (jobs completed, total steps, batches formed, wall
    time).

    Pass ``engine`` to resume a checkpointed batch: its live segments
    are matched to RUNNING jobs by handle.
    """
    if max_systems < 1:
        raise ValidationError("max_systems must be >= 1")
    if chunk_steps < 1:
        raise ValidationError("chunk_steps must be >= 1")
    if engine is None:
        engine = BatchedEngine(
            dt_fs=dt_fs, shift=shift, force_impl=force_impl
        )
    active: Dict[int, Job] = {}
    for job in queue.running():
        if job.handle is None or job.handle not in engine._by_handle:
            raise ValidationError(
                f"running job {job.job_id} has no live segment in the engine"
            )
        active[job.handle] = job
    t0 = time.perf_counter()
    total_steps = 0
    swaps = 0
    batches = 0
    while True:
        admitted = _admit(queue, engine, active, max_systems, max_particles)
        if admitted:
            batches += 1
        if not active:
            break
        chunk = min(
            chunk_steps,
            min(j.steps - j.steps_done for j in active.values()),
        )
        engine.step(chunk)
        total_steps += chunk * len(active)
        finished = []
        for handle, job in active.items():
            job.steps_done += chunk
            if job.steps_done >= job.steps:
                finished.append(handle)
        if finished:
            pots = engine.potentials()
            for handle in finished:
                job = active.pop(handle)
                job.final_potential = pots[handle]
                job.result = engine.remove(handle)
                job.status = DONE
                swaps += 1
    wall = time.perf_counter() - t0
    done = sum(1 for j in queue._jobs.values() if j.status == DONE)
    return {
        "jobs_done": done,
        "total_steps": total_steps,
        "batches_formed": batches,
        "swaps": swaps,
        "wall_s": wall,
        "aggregate_steps_per_s": total_steps / wall if wall > 0 else 0.0,
        "backend": engine.backend_name,
    }


# ---------------------------------------------------------------------------
# benchmark harness (``repro batch`` / BENCH_batch.json)
# ---------------------------------------------------------------------------

#: Per-system sizes of the default sweep: particles-per-cell at a
#: (3, 3, 3) grid, spanning the amortization-friendly small end up to
#: the kernel-bound saturation region (N = 54 .. 432).
BENCH_PPC = (2, 4, 16)


def _bench_point(
    force_impl: Optional[str],
    k_systems: int,
    ppc: int,
    steps: int,
    warm_steps: int,
    serial_sample: int,
    seed: int,
) -> dict:
    from repro.md.dataset import build_dataset
    from repro.md.engine import ReferenceEngine
    from repro.md.pairplan import clear_plan_cache, plan_cache_info

    systems = [
        build_dataset((3, 3, 3), cutoff=8.5, particles_per_cell=ppc,
                      seed=seed + i)
        for i in range(k_systems)
    ]
    n_per = systems[0][0].n

    # Cold: batch formation with an empty plan cache (priming included).
    clear_plan_cache()
    engine = BatchedEngine(force_impl=force_impl)
    t0 = time.perf_counter()
    for sysv, grid in systems:
        engine.add(sysv.copy(), grid)
    engine.prime()
    cold_wall = time.perf_counter() - t0
    cold_cache = plan_cache_info()._asdict()

    # Warm: steady-state stepping past the post-build honeymoon.
    engine.step(warm_steps)
    t0 = time.perf_counter()
    engine.step(steps)
    wall = time.perf_counter() - t0
    warm_cache = plan_cache_info()._asdict()
    batched_rate = k_systems * steps / wall
    builds = sum(engine.state_builds(h) for h in engine.handles())

    # Serial baseline: solo ReferenceEngine on the same backend.  For
    # large K a sample of systems is timed and the mean extrapolated;
    # ``serial_sampled`` records how many actually ran.
    sample = min(serial_sample, k_systems)
    serial_wall = 0.0
    for sysv, grid in systems[:sample]:
        eng = ReferenceEngine(
            sysv.copy(), grid, reuse_state=True, force_impl=force_impl
        )
        eng.run(warm_steps + 1, record_every=0)
        t0 = time.perf_counter()
        eng.run(steps, record_every=0)
        serial_wall += time.perf_counter() - t0
    serial_rate = steps / (serial_wall / sample)
    return {
        "k_systems": k_systems,
        "n_per_system": n_per,
        "particles_per_cell": ppc,
        "steps": steps,
        "backend": engine.backend_name,
        "state_builds_total": builds,
        "serial_sampled": sample,
        "formation_wall_s": cold_wall,
        "plan_cache_cold": cold_cache,
        "plan_cache_warm": warm_cache,
        # Speedup deliberately has no rate suffix: the regression gate
        # watches the aggregate rates, not the machine-dependent ratio.
        "speedup_vs_serial": batched_rate / serial_rate,
        "timing": {
            "aggregate_steps_per_s": batched_rate,
            "serial_aggregate_steps_per_s": serial_rate,
        },
    }


def run_batch_bench(
    force_impl: Optional[str] = None,
    k_systems: int = 256,
    steps: int = 30,
    warm_steps: int = 10,
    serial_sample: int = 6,
    seed: int = 2023,
    ppc_list=BENCH_PPC,
    smoke: bool = False,
) -> dict:
    """Measure batched vs serial aggregate throughput; returns the doc.

    ``smoke`` shrinks to the CI configuration: K=64, the smallest
    system size only, fewer steps.  The result layout mirrors
    ``BENCH_campaign.json`` (``points[...]["result"]["timing"]``) so
    :func:`repro.harness.campaign.check_regression` gates it unchanged.
    """
    if smoke:
        k_systems = min(k_systems, 64)
        steps = min(steps, 20)
        ppc_list = ppc_list[:1]
    points = {}
    for ppc in ppc_list:
        label = f"k{k_systems}_ppc{ppc}"
        points[label] = {
            "result": _bench_point(
                force_impl, k_systems, ppc, steps, warm_steps,
                serial_sample, seed,
            )
        }
    best = max(p["result"]["speedup_vs_serial"] for p in points.values())
    doc = {
        "bench": "batch",
        "smoke": bool(smoke),
        "seed": seed,
        "k_systems": k_systems,
        "steps": steps,
        "points": points,
        "summary": {
            "backend": next(iter(points.values()))["result"]["backend"],
            "best_speedup_vs_serial": best,
        },
    }
    return doc


def format_batch(doc: dict) -> str:
    lines = [
        "batched stepping bench "
        f"(K={doc['k_systems']}, {doc['steps']} steps, "
        f"backend={doc['summary']['backend']}"
        + (", smoke)" if doc.get("smoke") else ")"),
    ]
    for label, point in doc["points"].items():
        r = point["result"]
        t = r["timing"]
        lines.append(
            f"  {label:>12s}  N={r['n_per_system']:<5d} "
            f"batched {t['aggregate_steps_per_s']:10.0f} steps/s   "
            f"serial {t['serial_aggregate_steps_per_s']:8.0f} steps/s   "
            f"speedup {r['speedup_vs_serial']:5.2f}x"
        )
    lines.append(
        f"  best speedup {doc['summary']['best_speedup_vs_serial']:.2f}x"
    )
    return "\n".join(lines)

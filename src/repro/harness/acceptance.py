"""Acceptance matrix: machine-vs-reference validation across the design space.

One Fig. 19 comparison validates one configuration; this harness sweeps
a matrix of them — space sizes, species mixes, charged/neutral, position
widths — and reports a pass/fail table against the documented error
budgets.  It is the regression gate a maintainer runs before trusting a
datapath change, and the programmatic answer to "does the machine agree
with the physics *everywhere*, not just on the paper's workload?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.harness.report import format_table
from repro.md import build_dataset
from repro.md.forcefield import (
    CompositeKernel,
    EwaldRealKernel,
    LennardJonesKernel,
    compute_forces_kernel,
)

#: Error budgets the datapath must meet (see DESIGN.md Sec. 4 and the
#: interpolation/precision ablations).
FORCE_REL_TOLERANCE = 2e-3
ENERGY_REL_TOLERANCE = 1e-3


@dataclass
class AcceptanceCase:
    """One validation configuration."""

    name: str
    dims: Tuple[int, int, int] = (3, 3, 3)
    particles_per_cell: int = 16
    species: Tuple[str, ...] = ("Na",)
    charged: bool = False
    frac_bits: int = 23
    table_nb: int = 256
    min_distance: float = 1.7
    seed: int = 2023


@dataclass
class AcceptanceOutcome:
    case: AcceptanceCase
    force_rel_error: float
    energy_rel_error: float

    @property
    def passed(self) -> bool:
        return (
            self.force_rel_error < FORCE_REL_TOLERANCE
            and self.energy_rel_error < ENERGY_REL_TOLERANCE
        )


@dataclass
class AcceptanceReport:
    outcomes: List[AcceptanceOutcome] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(o.passed for o in self.outcomes)

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.passed)


def default_cases() -> List[AcceptanceCase]:
    """The standard acceptance matrix."""
    return [
        AcceptanceCase("paper-workload"),
        AcceptanceCase("dense-64", particles_per_cell=32),
        AcceptanceCase("multi-species", species=("Na", "Ar", "Ne")),
        AcceptanceCase(
            "ionic",
            species=("Na", "Cl"),
            charged=True,
            min_distance=2.4,
        ),
        AcceptanceCase("larger-space", dims=(4, 4, 4), particles_per_cell=8),
        AcceptanceCase("narrow-positions", frac_bits=16),
        AcceptanceCase("small-tables", table_nb=128),
        AcceptanceCase("alt-seed", seed=99),
    ]


def run_case(case: AcceptanceCase) -> AcceptanceOutcome:
    """Validate one configuration: one force pass vs. float64 reference."""
    system, grid = build_dataset(
        case.dims,
        particles_per_cell=case.particles_per_cell,
        species=case.species,
        charged=case.charged,
        min_distance=case.min_distance,
        seed=case.seed,
    )
    config = MachineConfig(
        case.dims,
        frac_bits=case.frac_bits,
        table_nb=case.table_nb,
        force_model="lj+coulomb" if case.charged else "lj",
    )
    machine = FasdaMachine(config, system=system.copy())
    stats = machine.compute_forces(collect_traffic=False)
    kernels = [LennardJonesKernel()]
    if case.charged:
        kernels.append(EwaldRealKernel(machine.ewald_beta))
    f_ref, e_ref = compute_forces_kernel(
        system, grid, CompositeKernel(kernels)
    )
    f_mac = machine.forces.astype(np.float64)
    scale = max(float(np.abs(f_ref).max()), 1e-9)
    force_err = float(np.abs(f_mac - f_ref).max() / scale)
    energy_err = (
        abs(stats.potential_energy - e_ref) / abs(e_ref)
        if abs(e_ref) > 1e-9
        else 0.0
    )
    return AcceptanceOutcome(case, force_err, energy_err)


def run_acceptance(cases: Optional[List[AcceptanceCase]] = None) -> AcceptanceReport:
    """Run the full matrix."""
    report = AcceptanceReport()
    for case in cases if cases is not None else default_cases():
        report.outcomes.append(run_case(case))
    return report


def format_acceptance(report: AcceptanceReport) -> str:
    rows = [
        [
            o.case.name,
            "x".join(map(str, o.case.dims)),
            ",".join(o.case.species),
            "yes" if o.case.charged else "no",
            o.case.frac_bits,
            f"{o.force_rel_error:.2e}",
            f"{o.energy_rel_error:.2e}",
            "PASS" if o.passed else "FAIL",
        ]
        for o in report.outcomes
    ]
    table = format_table(
        ["case", "space", "species", "charged", "bits", "force err", "energy err", "result"],
        rows,
        title="Datapath acceptance matrix (machine vs float64 reference)",
    )
    tail = (
        f"\nbudgets: force < {FORCE_REL_TOLERANCE:g}, "
        f"energy < {ENERGY_REL_TOLERANCE:g}; "
        f"{report.n_failed} of {len(report.outcomes)} failed"
    )
    return table + tail

"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _render(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table.

    Floats are formatted to ``precision`` decimals; ``None`` renders as
    ``-``.  Columns are right-aligned except the first.
    """
    str_rows: List[List[str]] = [
        [_render(c, precision) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """A horizontal ASCII bar chart (for terminal-friendly figures).

    Bars are scaled to the maximum value; each row shows the label, the
    bar, and the numeric value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vmax = max((v for v in values if v is not None), default=0.0)
    label_w = max((len(l) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in zip(labels, values):
        if value is None or vmax <= 0:
            bar = ""
            shown = "-"
        else:
            bar = "#" * max(1, int(round(width * value / vmax))) if value > 0 else ""
            shown = f"{value:.2f}{unit}"
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {shown}")
    return "\n".join(lines)


def format_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 6,
) -> str:
    """Render rows as CSV (for plotting outside this package).

    Fields containing commas or quotes are quoted per RFC 4180; ``None``
    renders as an empty field.
    """

    def esc(cell: Cell) -> str:
        if cell is None:
            return ""
        text = _render(cell, precision)
        if any(c in text for c in ',"\n'):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(esc(h) for h in headers)]
    lines.extend(",".join(esc(c) for c in row) for row in rows)
    return "\n".join(lines)

"""Fault sweep: survival and overhead under packet loss (loss x budget).

The paper's cluster runs bare UDP and keeps it lossless purely by pacing
transmissions with cooldown counters (Sec. 5.4).  This harness measures
what that choice costs when the losslessness assumption breaks: a grid
of injected loss rates crossed with reliable-transport retry budgets,
reporting for each cell whether the run survived, how far the trajectory
drifted from the fault-free baseline, how many halo records degraded to
stale snapshots, and the retransmission cycle overhead.  A companion
sweep exercises the chained-synchronization protocol, where a lost
``last`` signal under bare UDP deadlocks the handshake — the progress
watchdog's diagnosis (naming the stuck node and missing edge) is
captured verbatim.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.sync import diagnose_dead_node, run_chained_sync
from repro.faults import (
    FaultInjector,
    FaultPlan,
    NodeFaultEvent,
    NodeFaultPlan,
    TransportConfig,
)
from repro.harness.report import format_table
from repro.md import build_dataset
from repro.network.topology import TorusTopology
from repro.util.errors import DeadlockError, NodeFailureError, TransportError

#: Loss rates swept by default; 0.01 is the acceptance operating point.
DEFAULT_LOSS_RATES = (0.0, 0.01, 0.02)
#: Retry budgets swept for the reliable transport (budget 0 = one shot).
DEFAULT_RETRY_BUDGETS = (0, 1, 2)


@dataclass(frozen=True)
class FaultSweepCell:
    """One (loss rate, transport mode) outcome of the machine sweep."""

    loss_rate: float
    mode: str  # "reliable" or "bare"
    retry_budget: Optional[int]  # None for bare UDP
    survived: bool
    bitwise_identical: bool
    max_position_error: float  # angstrom vs fault-free; nan if dead
    degraded_records: int
    packets_sent: int
    retransmits: int
    lost_packets: int
    overhead_cycles: float
    failure: Optional[str] = None  # error text when not survived


@dataclass(frozen=True)
class SyncFaultRow:
    """One (loss rate, transport mode) outcome of the sync-protocol sweep."""

    loss_rate: float
    mode: str
    completed: bool
    makespan: float  # cycles; nan when deadlocked
    overhead_percent: float  # vs fault-free makespan; nan when deadlocked
    retransmits: int
    lost: int
    deadlock: Optional[str] = None  # watchdog diagnosis when deadlocked


@dataclass
class FaultSweepResult:
    """Full sweep output (machine grid + sync-protocol rows)."""

    dims: Tuple[int, int, int]
    fpga_dims: Tuple[int, int, int]
    n_steps: int
    seed: int
    cells: List[FaultSweepCell] = field(default_factory=list)
    sync_baseline_makespan: float = 0.0
    sync_rows: List[SyncFaultRow] = field(default_factory=list)

    def to_json(self) -> str:
        """Serialize for the CI artifact (stable key order)."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)


def _run_machine(
    cfg: MachineConfig,
    system,
    n_steps: int,
    injector: Optional[FaultInjector] = None,
    transport: Optional[TransportConfig] = None,
) -> DistributedMachine:
    machine = DistributedMachine(
        cfg, system=system.copy(), injector=injector, transport=transport
    )
    for _ in range(n_steps):
        machine.step()
    return machine


def _cell(
    cfg: MachineConfig,
    system,
    baseline: np.ndarray,
    n_steps: int,
    seed: int,
    loss: float,
    budget: Optional[int],
) -> FaultSweepCell:
    bare = budget is None
    plan = FaultPlan(
        seed=seed,
        drop_rate=loss,
        # Bare UDP degrades onto stale snapshots, which requires one
        # clean exchange to populate the cache; the reliable transport
        # needs no warm-up.
        onset_iteration=1 if bare else 0,
    )
    injector = FaultInjector(plan)
    transport = None if bare else TransportConfig(retry_budget=budget)
    mode = "bare" if bare else "reliable"
    try:
        machine = _run_machine(cfg, system, n_steps, injector, transport)
    except TransportError as exc:
        return FaultSweepCell(
            loss_rate=loss,
            mode=mode,
            retry_budget=budget,
            survived=False,
            bitwise_identical=False,
            max_position_error=float("nan"),
            degraded_records=0,
            packets_sent=0,
            retransmits=0,
            lost_packets=0,
            overhead_cycles=0.0,
            failure=str(exc),
        )
    err = float(np.abs(machine.system.positions - baseline).max())
    ts = machine.transport_stats
    return FaultSweepCell(
        loss_rate=loss,
        mode=mode,
        retry_budget=budget,
        survived=True,
        bitwise_identical=bool(
            np.array_equal(machine.system.positions, baseline)
        ),
        max_position_error=err,
        degraded_records=machine.degraded_records_total,
        packets_sent=ts.packets_sent,
        retransmits=ts.retransmits,
        lost_packets=ts.lost,
        overhead_cycles=ts.overhead_cycles,
    )


def _sync_row(
    topology: TorusTopology,
    n_iterations: int,
    baseline_makespan: float,
    seed: int,
    loss: float,
    reliable: bool,
) -> SyncFaultRow:
    injector = FaultInjector(FaultPlan(seed=seed, drop_rate=loss))
    transport = TransportConfig(retry_budget=3) if reliable else None
    mode = "reliable" if reliable else "bare"
    try:
        res = run_chained_sync(
            topology,
            lambda node, it: 10_000.0,
            n_iterations,
            injector=injector,
            transport=transport,
        )
    except DeadlockError as exc:
        return SyncFaultRow(
            loss_rate=loss,
            mode=mode,
            completed=False,
            makespan=float("nan"),
            overhead_percent=float("nan"),
            retransmits=0,
            lost=0,
            deadlock=str(exc),
        )
    counts = res.fault_counts or {}
    return SyncFaultRow(
        loss_rate=loss,
        mode=mode,
        completed=True,
        makespan=res.makespan,
        overhead_percent=100.0 * (res.makespan / baseline_makespan - 1.0),
        retransmits=counts.get("retransmits", 0),
        lost=counts.get("lost", 0),
    )


def run_fault_sweep(
    loss_rates: Tuple[float, ...] = DEFAULT_LOSS_RATES,
    retry_budgets: Tuple[int, ...] = DEFAULT_RETRY_BUDGETS,
    n_steps: int = 3,
    sync_iterations: int = 12,
    dims: Tuple[int, int, int] = (4, 4, 4),
    fpga_dims: Tuple[int, int, int] = (2, 2, 2),
    seed: int = 2023,
) -> FaultSweepResult:
    """Sweep loss rate x retry budget on the distributed machine + sync.

    Every run reuses the same dataset and fault seed, so cells differ
    only in the declared loss rate and transport policy.  Each loss rate
    gets one bare-UDP cell (retry_budget None) alongside the reliable
    cells; the sync sweep runs the chained-synchronization protocol once
    per (loss, mode) and captures the deadlock diagnosis when bare UDP
    loses a handshake signal.
    """
    cfg = MachineConfig(dims, fpga_dims)
    system, _ = build_dataset(dims, particles_per_cell=16, seed=seed)
    baseline = _run_machine(cfg, system, n_steps).system.positions

    result = FaultSweepResult(
        dims=tuple(dims), fpga_dims=tuple(fpga_dims), n_steps=n_steps, seed=seed
    )
    for loss in loss_rates:
        for budget in retry_budgets:
            result.cells.append(
                _cell(cfg, system, baseline, n_steps, seed, loss, budget)
            )
        result.cells.append(
            _cell(cfg, system, baseline, n_steps, seed, loss, None)
        )

    topology = TorusTopology(fpga_dims)
    result.sync_baseline_makespan = run_chained_sync(
        topology, lambda node, it: 10_000.0, sync_iterations
    ).makespan
    for loss in loss_rates:
        for reliable in (True, False):
            result.sync_rows.append(
                _sync_row(
                    topology,
                    sync_iterations,
                    result.sync_baseline_makespan,
                    seed,
                    loss,
                    reliable,
                )
            )
    return result


def format_fault_sweep(result: FaultSweepResult) -> str:
    """Render the sweep as the survival/overhead tables."""
    rows = []
    for c in result.cells:
        rows.append(
            [
                f"{100 * c.loss_rate:.0f}%",
                c.mode if c.retry_budget is None else f"{c.mode} b={c.retry_budget}",
                "yes" if c.survived else "DEAD",
                (
                    "bitwise"
                    if c.bitwise_identical
                    else (f"{c.max_position_error:.2e}" if c.survived else "-")
                ),
                c.degraded_records,
                c.retransmits,
                c.lost_packets,
                c.overhead_cycles,
            ]
        )
    machine_table = format_table(
        [
            "loss",
            "transport",
            "survived",
            "traj err (A)",
            "degraded",
            "retx",
            "lost",
            "overhead (cyc)",
        ],
        rows,
        precision=0,
        title=(
            f"Fault sweep — {result.n_steps} steps on "
            f"{'x'.join(map(str, result.dims))} cells / "
            f"{'x'.join(map(str, result.fpga_dims))} nodes (seed {result.seed})"
        ),
    )

    sync_rows = []
    for r in result.sync_rows:
        sync_rows.append(
            [
                f"{100 * r.loss_rate:.0f}%",
                r.mode,
                "yes" if r.completed else "DEADLOCK",
                r.makespan if r.completed else None,
                f"{r.overhead_percent:+.2f}%" if r.completed else "-",
                r.retransmits,
                r.lost,
            ]
        )
    sync_table = format_table(
        ["loss", "transport", "completed", "makespan", "overhead", "retx", "lost"],
        sync_rows,
        precision=0,
        title=(
            "Chained sync under loss — baseline makespan "
            f"{result.sync_baseline_makespan:.0f} cycles"
        ),
    )

    notes = []
    for r in result.sync_rows:
        if r.deadlock:
            notes.append(
                f"  loss {100 * r.loss_rate:.0f}% {r.mode}: {r.deadlock}"
            )
    diagnosis = (
        "\nwatchdog diagnoses:\n" + "\n".join(notes) if notes else ""
    )
    return machine_table + "\n\n" + sync_table + diagnosis


# ---------------------------------------------------------------------------
# Node-failure chaos soak (MTBF x shadow-checkpoint interval)
# ---------------------------------------------------------------------------

#: Node mean-time-between-failures values swept by default (iterations).
DEFAULT_NODE_MTBFS = (3.0, 6.0)
#: Shadow-checkpoint intervals swept by default (iterations).
DEFAULT_SHADOW_INTERVALS = (1, 2, 4)
#: Seeds the soak repeats every grid cell over.
DEFAULT_SOAK_SEEDS = (2023, 2024, 2025)


@dataclass(frozen=True)
class NodeSoakCell:
    """One (MTBF, shadow interval, seed) outcome of the chaos soak."""

    mtbf_iterations: float
    shadow_interval: int
    seed: int
    survived: bool
    bitwise_identical: bool
    n_recoveries: int
    cells_moved: int
    records_moved: int
    recovery_traffic_records: int
    shadow_traffic_records: int
    cycles_lost: float
    failure: Optional[str] = None

    @property
    def recovered(self) -> bool:
        """Survived *and* landed bitwise on the fault-free trajectory."""
        return self.survived and self.bitwise_identical


@dataclass
class NodeSoakResult:
    """Full chaos-soak output: the MTBF x interval x seed grid."""

    dims: Tuple[int, int, int]
    fpga_dims: Tuple[int, int, int]
    n_steps: int
    mtbfs: Tuple[float, ...]
    intervals: Tuple[int, ...]
    seeds: Tuple[int, ...]
    cells: List[NodeSoakCell] = field(default_factory=list)

    @property
    def unrecovered(self) -> int:
        """Runs that died or drifted — the CI soak gate requires zero."""
        return sum(1 for c in self.cells if not c.recovered)

    def to_json(self) -> str:
        """Serialize for the CI artifact (stable key order)."""
        doc = asdict(self)
        doc["unrecovered"] = self.unrecovered
        return json.dumps(doc, indent=2, sort_keys=True)


def run_node_soak(
    mtbfs: Tuple[float, ...] = DEFAULT_NODE_MTBFS,
    intervals: Tuple[int, ...] = DEFAULT_SHADOW_INTERVALS,
    n_steps: int = 6,
    dims: Tuple[int, int, int] = (4, 4, 4),
    fpga_dims: Tuple[int, int, int] = (2, 2, 2),
    seeds: Tuple[int, ...] = DEFAULT_SOAK_SEEDS,
) -> NodeSoakResult:
    """Chaos-soak the node-crash recovery protocol over an MTBF grid.

    For every (MTBF, shadow interval, seed) the distributed machine runs
    with random crash/restart faults and the final positions are
    compared bitwise against that seed's fault-free baseline — the
    recovery contract says only traffic/cycle accounting may differ.
    The grid exposes the trade the ``shadow_interval`` knob buys:
    shorter intervals shrink replay (``cycles_lost``) but grow
    steady-state ``shadow_traffic_records``.
    """
    cfg = MachineConfig(dims, fpga_dims)
    result = NodeSoakResult(
        dims=tuple(dims), fpga_dims=tuple(fpga_dims), n_steps=n_steps,
        mtbfs=tuple(mtbfs), intervals=tuple(intervals), seeds=tuple(seeds),
    )
    for seed in seeds:
        system, _ = build_dataset(dims, particles_per_cell=16, seed=seed)
        baseline = _run_machine(cfg, system, n_steps).system.positions
        for mtbf in mtbfs:
            for interval in intervals:
                plan = NodeFaultPlan.from_mtbf(mtbf, seed=seed)
                machine = DistributedMachine(
                    cfg, system=system.copy(), node_faults=plan,
                    shadow_interval=interval,
                )
                failure = None
                try:
                    for _ in range(n_steps):
                        machine.step()
                    survived = True
                except NodeFailureError as exc:
                    survived, failure = False, str(exc)
                summary = machine.recovery_summary()
                result.cells.append(
                    NodeSoakCell(
                        mtbf_iterations=mtbf,
                        shadow_interval=interval,
                        seed=seed,
                        survived=survived,
                        bitwise_identical=survived and bool(
                            np.array_equal(machine.system.positions, baseline)
                        ),
                        n_recoveries=summary["n_recoveries"],
                        cells_moved=summary["cells_moved"],
                        records_moved=summary["records_moved"],
                        recovery_traffic_records=summary[
                            "recovery_traffic_records"
                        ],
                        shadow_traffic_records=summary[
                            "shadow_traffic_records"
                        ],
                        cycles_lost=summary["cycles_lost"],
                        failure=failure,
                    )
                )
    return result


def format_node_soak(result: NodeSoakResult) -> str:
    """Render the chaos soak as a recovery-accounting table."""
    rows = []
    for c in result.cells:
        rows.append(
            [
                f"{c.mtbf_iterations:g}",
                c.shadow_interval,
                c.seed,
                "yes" if c.survived else "DEAD",
                "bitwise" if c.bitwise_identical else "-",
                c.n_recoveries,
                c.records_moved,
                c.shadow_traffic_records,
                c.cycles_lost,
            ]
        )
    table = format_table(
        [
            "mtbf",
            "shadow",
            "seed",
            "survived",
            "trajectory",
            "recoveries",
            "moved",
            "shadow tfc",
            "cycles lost",
        ],
        rows,
        precision=0,
        title=(
            f"Node-failure soak — {result.n_steps} steps on "
            f"{'x'.join(map(str, result.dims))} cells / "
            f"{'x'.join(map(str, result.fpga_dims))} nodes; "
            f"{result.unrecovered} unrecovered of {len(result.cells)}"
        ),
    )
    return table


# ---------------------------------------------------------------------------
# Batched job-service chaos soak (`repro jobs --chaos` / FAULTS_jobs.json)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSoakCell:
    """One job's outcome under the chaos campaign."""

    job_index: int
    job_id: int
    poison_mode: Optional[str]  # None for healthy jobs
    status: str                 # terminal JobQueue state
    attempts: int
    reason: Optional[str]       # guard trip reason, when quarantined
    #: Healthy jobs only: final state bitwise equal to a run that never
    #: contained any poisoned job (the contamination gate).  None for
    #: poisoned jobs.
    survivor_bitwise: Optional[bool]
    #: SIGKILL leg: this job's outcome after journal resume bitwise
    #: equals the uninterrupted chaos run.  None when the leg was
    #: skipped (no fork on this platform).
    resume_bitwise: Optional[bool]

    @property
    def contained(self) -> bool:
        """The blast radius held for this job.

        Healthy jobs must finish, match the poison-free baseline
        bitwise, and survive the SIGKILL/resume leg bitwise; poisoned
        jobs must reach a terminal state (done after retry, or
        quarantined) without contaminating anyone — their own resume
        outcome must also be bitwise stable.
        """
        if self.poison_mode is None:
            return (
                self.status == "done"
                and bool(self.survivor_bitwise)
                and self.resume_bitwise is not False
            )
        return (
            self.status in ("done", "quarantined")
            and self.resume_bitwise is not False
        )


@dataclass
class JobSoakResult:
    """Full chaos-soak output for the batched job service."""

    k_jobs: int
    steps: int
    chunk_steps: int
    seed: int
    poison_rate: float
    retry_attempts: int
    backend: str
    kill_at_chunk: Optional[int]
    killed: bool = False
    n_poisoned: int = 0
    n_quarantined: int = 0
    n_retried: int = 0
    n_done: int = 0
    n_adopted: int = 0
    cells: List["JobSoakCell"] = field(default_factory=list)

    @property
    def unrecovered(self) -> int:
        """Jobs whose blast radius leaked — the CI gate requires zero."""
        return sum(1 for c in self.cells if not c.contained)

    def to_json(self) -> str:
        """Serialize for the CI artifact (stable key order)."""
        doc = asdict(self)
        doc["unrecovered"] = self.unrecovered
        return json.dumps(doc, indent=2, sort_keys=True)


def _build_job_queue(k_jobs, steps, seed, plan, poisoned_only=None):
    """Deterministic K-job queue; ``plan`` corrupts its chosen subset.

    ``poisoned_only=False`` builds the poison-free baseline queue (the
    healthy jobs, unmodified, in the same order).  Returns
    ``(queue, job_ids_by_index, poison_mode_by_index)``.
    """
    from repro.harness.jobs import JobQueue

    queue = JobQueue()
    ids: Dict[int, int] = {}
    modes: Dict[int, Optional[str]] = {}
    for i in range(k_jobs):
        system, grid = build_dataset(
            (3, 3, 3), cutoff=8.5, particles_per_cell=2, seed=seed + i
        )
        mode = plan.decide(i)
        modes[i] = mode
        if mode is not None:
            if poisoned_only is False:
                continue
            system = plan.poison(system, i)
        # Varied budgets so swap-out/in happens mid-campaign.
        ids[i] = queue.submit(system, grid, steps=steps + 3 * (i % 3))
    return queue, ids, modes


def run_job_soak(
    k_jobs: int = 64,
    steps: int = 12,
    chunk_steps: int = 5,
    seed: int = 2023,
    poison_rate: float = 0.08,
    force_impl: Optional[str] = None,
    retry_attempts: int = 1,
    max_systems: int = 16,
    kill_at_chunk: Optional[int] = 3,
    workdir: Optional[str] = None,
) -> JobSoakResult:
    """Chaos-soak the crash-safe job service (DESIGN.md §12).

    Three deterministic campaigns over the same K jobs, a seeded subset
    of which is corrupted by :class:`~repro.faults.health.JobChaosPlan`:

    1. the guarded chaos run — poisoned jobs must quarantine (or finish
       after retry), healthy jobs must finish;
    2. a poison-free baseline containing only the healthy jobs — every
       healthy job's final state must be bitwise identical across the
       two runs (quarantine never contaminates a survivor);
    3. a SIGKILL leg — a forked child runs the same campaign and kills
       itself (uncatchably) at ``kill_at_chunk``; the parent resumes
       from the journal and every job's terminal outcome must be
       bitwise identical to run 1.

    ``unrecovered`` counts jobs for which any of that failed.
    """
    import os
    import shutil
    import signal
    import tempfile

    from repro.faults.health import GuardConfig, JobChaosPlan
    from repro.harness.jobs import DONE, run_jobs

    plan = JobChaosPlan(seed=seed, poison_rate=poison_rate)
    guard = GuardConfig()
    common = dict(
        force_impl=force_impl, max_systems=max_systems,
        chunk_steps=chunk_steps, guard=guard,
        retry_attempts=retry_attempts,
    )
    root = workdir or tempfile.mkdtemp(prefix="jobsoak-")
    made_root = workdir is None
    try:
        # Leg 1: the uninterrupted chaos campaign.
        wd_chaos = os.path.join(root, "chaos")
        queue, ids, modes = _build_job_queue(k_jobs, steps, seed, plan)
        summary = run_jobs(queue, workdir=wd_chaos, **common)

        # Leg 2: poison-free baseline (plain service, no guard needed).
        base_q, base_ids, _ = _build_job_queue(
            k_jobs, steps, seed, plan, poisoned_only=False
        )
        run_jobs(base_q, force_impl=force_impl, max_systems=max_systems,
                 chunk_steps=chunk_steps)

        # Leg 3: SIGKILL the service mid-campaign, resume from journal.
        resume_ok: Dict[int, bool] = {}
        killed = False
        if kill_at_chunk is not None and hasattr(os, "fork"):
            wd_kill = os.path.join(root, "killed")
            pid = os.fork()
            if pid == 0:  # child: run until the bomb goes off
                try:
                    kq, _, _ = _build_job_queue(k_jobs, steps, seed, plan)

                    def bomb(chunk, engine):
                        if chunk == kill_at_chunk:
                            os.kill(os.getpid(), signal.SIGKILL)

                    run_jobs(kq, workdir=wd_kill, on_chunk=bomb, **common)
                finally:
                    os._exit(0)
            _, status = os.waitpid(pid, 0)
            killed = bool(
                os.WIFSIGNALED(status)
                and os.WTERMSIG(status) == signal.SIGKILL
            )
            rq, rids, _ = _build_job_queue(k_jobs, steps, seed, plan)
            resumed = run_jobs(rq, workdir=wd_kill, resume=True, **common)
            for i, jid in rids.items():
                ja, jb = queue._job(ids[i]), rq._job(jid)
                same = (
                    ja.status == jb.status
                    and ja.steps_done == jb.steps_done
                )
                if same and ja.status == DONE:
                    same = bool(
                        np.array_equal(ja.result.positions,
                                       jb.result.positions)
                        and np.array_equal(ja.result.velocities,
                                           jb.result.velocities)
                        and ja.final_potential == jb.final_potential
                    )
                resume_ok[i] = same
        else:  # pragma: no cover - non-fork platforms
            resumed = {"adopted_done": 0}

        result = JobSoakResult(
            k_jobs=k_jobs, steps=steps, chunk_steps=chunk_steps, seed=seed,
            poison_rate=poison_rate, retry_attempts=retry_attempts,
            backend=summary["backend"], kill_at_chunk=kill_at_chunk,
            killed=killed,
            n_poisoned=sum(1 for m in modes.values() if m is not None),
            n_quarantined=summary["quarantined"],
            n_retried=summary["retries"],
            n_done=summary["jobs_done"],
            n_adopted=resumed.get("adopted_done", 0),
        )
        for i in range(k_jobs):
            job = queue._job(ids[i])
            survivor = None
            if modes[i] is None:
                base = base_q._job(base_ids[i])
                survivor = bool(
                    job.status == DONE
                    and base.status == DONE
                    and np.array_equal(job.result.positions,
                                       base.result.positions)
                    and np.array_equal(job.result.velocities,
                                       base.result.velocities)
                )
            result.cells.append(
                JobSoakCell(
                    job_index=i,
                    job_id=ids[i],
                    poison_mode=modes[i],
                    status=job.status,
                    attempts=job.attempts,
                    reason=(job.poison or {}).get("reason"),
                    survivor_bitwise=survivor,
                    resume_bitwise=resume_ok.get(i),
                )
            )
        return result
    finally:
        if made_root:
            shutil.rmtree(root, ignore_errors=True)


def format_job_soak(result: JobSoakResult) -> str:
    """Render the job-service chaos soak: poisoned-job table + verdict."""
    rows = []
    for c in result.cells:
        if c.poison_mode is None:
            continue
        rows.append(
            [
                c.job_index,
                c.poison_mode,
                c.status,
                c.attempts,
                c.reason or "-",
                "bitwise" if c.resume_bitwise else
                ("-" if c.resume_bitwise is None else "DIVERGED"),
            ]
        )
    healthy = [c for c in result.cells if c.poison_mode is None]
    n_survivor_ok = sum(1 for c in healthy if c.survivor_bitwise)
    table = format_table(
        ["job", "poison", "outcome", "attempts", "reason", "resume"],
        rows,
        precision=0,
        title=(
            f"Job-service chaos soak — K={result.k_jobs} "
            f"({result.n_poisoned} poisoned, backend "
            f"{result.backend})"
        ),
    )
    lines = [
        table,
        f"  survivors bitwise vs poison-free baseline: "
        f"{n_survivor_ok}/{len(healthy)}",
        f"  quarantined {result.n_quarantined}, retried {result.n_retried}, "
        f"done {result.n_done}"
        + (
            f"; SIGKILL@chunk{result.kill_at_chunk} resume adopted "
            f"{result.n_adopted} done job(s)"
            if result.killed else "; SIGKILL leg skipped"
        ),
        f"  unrecovered: {result.unrecovered} of {result.k_jobs}",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Single-crash recovery demo (the `repro recover` CLI walk-through)
# ---------------------------------------------------------------------------


def run_recovery_demo(
    node: int = 1,
    iteration: int = 3,
    n_steps: int = 5,
    dims: Tuple[int, int, int] = (4, 4, 4),
    fpga_dims: Tuple[int, int, int] = (2, 2, 2),
    seed: int = 2023,
    shadow_interval: int = 2,
) -> Dict[str, Any]:
    """Kill one node at a scripted iteration and narrate the recovery.

    Runs the fault-free baseline, then the same seed with a scripted
    crash of ``node`` at ``iteration``; verifies the recovered
    trajectory is bitwise identical; captures the survivors' watchdog
    diagnosis of the silent peer; pushes the restore/replay traffic
    through the packet-level switch; and folds the recovery aggregates
    into a measured :class:`~repro.core.machine.StepStats`.  Returns a
    JSON-able document (the ``repro recover`` payload).
    """
    from repro.core.machine import FasdaMachine
    from repro.network.netsim import Burst, OutputQueuedSwitch, SwitchStats

    cfg = MachineConfig(dims, fpga_dims)
    system, _ = build_dataset(dims, particles_per_cell=16, seed=seed)
    baseline = _run_machine(cfg, system, n_steps)

    plan = NodeFaultPlan(
        events=(NodeFaultEvent(node=node, iteration=iteration),)
    )
    machine = DistributedMachine(
        cfg, system=system.copy(), node_faults=plan,
        shadow_interval=shadow_interval,
    )
    for _ in range(n_steps):
        machine.step()
    bitwise = bool(
        np.array_equal(machine.system.positions, baseline.system.positions)
    )

    # The survivors' view: the chained-sync watchdog names the dead peer.
    diagnosis = diagnose_dead_node(TorusTopology(tuple(fpga_dims)), node)

    # Restore/replay traffic rides the same switch as halo exchange —
    # account for it at packet granularity and tag the merged stats.
    switch = OutputQueuedSwitch(machine.config.n_fpgas)
    switch_stats = SwitchStats(delivered=0, dropped=0)
    for rec in machine.recovery_log:
        restore = switch.run(
            [Burst(src=rec.buddy, dst=rec.node,
                   n_packets=rec.records_moved, gap_cycles=4)],
            channel="recovery",
            iteration=rec.crash_iteration,
        )
        switch_stats = switch_stats + SwitchStats(
            delivered=restore.delivered,
            dropped=restore.dropped,
            max_occupancy=restore.max_occupancy,
            recoveries=1,
        )

    # Fold the aggregates into one measured force-evaluation pass so the
    # per-step accounting surfaces next to the workload counters.
    summary = machine.recovery_summary()
    probe = FasdaMachine(cfg, system=system.copy())
    stats = probe.compute_forces()
    stats.recoveries = summary["n_recoveries"]
    stats.recovery_cycles = summary["cycles_lost"]

    return {
        "dims": list(dims),
        "fpga_dims": list(fpga_dims),
        "seed": seed,
        "n_steps": n_steps,
        "crashed_node": node,
        "crash_iteration": iteration,
        "shadow_interval": shadow_interval,
        "bitwise_identical": bitwise,
        "watchdog_diagnosis": diagnosis,
        "recovery_log": [asdict(r) for r in machine.recovery_log],
        "summary": summary,
        "switch": {
            "delivered": switch_stats.delivered,
            "dropped": switch_stats.dropped,
            "recoveries": switch_stats.recoveries,
            "loss_rate": switch_stats.loss_rate,
        },
        "step_stats": {
            "recoveries": stats.recoveries,
            "recovery_cycles": stats.recovery_cycles,
            "potential_energy": stats.potential_energy,
        },
    }


def format_recovery_demo(doc: Dict[str, Any]) -> str:
    """Human-readable narration of a ``run_recovery_demo`` document."""
    lines = [
        "Node-failure recovery demo — node {crashed_node} killed at "
        "iteration {crash_iteration} ({n} steps on {d} cells / {f} nodes, "
        "seed {seed})".format(
            crashed_node=doc["crashed_node"],
            crash_iteration=doc["crash_iteration"],
            n=doc["n_steps"],
            d="x".join(map(str, doc["dims"])),
            f="x".join(map(str, doc["fpga_dims"])),
            seed=doc["seed"],
        ),
        "",
    ]
    for rec in doc["recovery_log"]:
        lines.append(
            "  crash @ it {it}: node {node} -> buddy {buddy}, replayed "
            "{rp} iteration(s) from shadow @ it {sh}; {cells} cells / "
            "{recs} records moved, {cyc:.0f} cycles lost".format(
                it=rec["crash_iteration"], node=rec["node"],
                buddy=rec["buddy"], rp=rec["replay_iterations"],
                sh=rec["shadow_iteration"], cells=rec["cells_moved"],
                recs=rec["records_moved"], cyc=rec["cycles_lost"],
            )
        )
    s = doc["summary"]
    lines += [
        "",
        "  trajectory: {}".format(
            "bitwise identical to fault-free run"
            if doc["bitwise_identical"]
            else "DIVERGED from fault-free run"
        ),
        f"  watchdog: {doc['watchdog_diagnosis']}",
        "  traffic: {rt} recovery + {st} shadow records; switch delivered "
        "{dl} recovery packets ({nr} recoveries tagged)".format(
            rt=s["recovery_traffic_records"],
            st=s["shadow_traffic_records"],
            dl=doc["switch"]["delivered"],
            nr=doc["switch"]["recoveries"],
        ),
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Elasticity: rescale demo + chaos-composed elasticity soak (`repro rescale`)
# ---------------------------------------------------------------------------

#: Cell grid of the elasticity runs — 12 divides by every size in the
#: acceptance schedule, so 4 -> 6 -> 3 all partition along x.
DEFAULT_RESCALE_DIMS = (12, 3, 3)
#: The acceptance grow/shrink schedule (node counts, in order).
DEFAULT_RESCALE_SCHEDULE = (4, 6, 3)
#: Boundary frequencies (steps between rescale attempts) swept by default.
DEFAULT_RESCALE_FREQS = (2, 3)
#: Migration-channel fault rates swept by default (0 = clean control).
DEFAULT_RESCALE_FAULT_RATES = (0.0, 0.05, 0.3)
#: Seeds the elasticity soak repeats every grid cell over.
DEFAULT_RESCALE_SEEDS = (2023, 2024, 2025)


def _elastic_machine(
    dims, n_nodes, system, seed, injector=None, transport=None,
    node_faults=None,
):
    from repro.core.elasticity import fpga_grid_for

    cfg = MachineConfig(tuple(dims), fpga_grid_for(dims, n_nodes))
    return DistributedMachine(
        cfg, system=system.copy(), seed=seed, injector=injector,
        transport=transport, node_faults=node_faults,
    )


def _machine_state(m: DistributedMachine) -> Dict[str, Any]:
    """Bitwise snapshot of everything a rescale rollback must preserve."""
    return {
        "positions": m.system.positions.copy(),
        "velocities": m.system.velocities.copy(),
        "velocities32": m._velocities32.copy(),
        "forces32": m._forces32.copy(),
        "iteration": m._iteration,
        "n_fpgas": m.config.n_fpgas,
    }


def _states_equal(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    return all(
        np.array_equal(a[k], b[k]) if isinstance(a[k], np.ndarray) else a[k] == b[k]
        for k in a
    )


def _fixed_machine_from(dims, n_nodes, m: DistributedMachine) -> DistributedMachine:
    """Fresh fixed-size machine primed with ``m``'s boundary state.

    Checkpoint-restore semantics: the float32 velocity/force caches are
    copied bitwise and the machine marked primed, exactly what a
    restore at the new size would produce — the reference the
    bitwise-equivalence acceptance compares each segment against.
    """
    from repro.core.elasticity import fpga_grid_for

    cfg = MachineConfig(tuple(dims), fpga_grid_for(dims, n_nodes))
    ref = DistributedMachine(cfg, system=m.system.copy())
    ref._velocities32 = m._velocities32.copy()
    ref._forces32 = m._forces32.copy()
    ref._primed = m._primed
    return ref


def _check_migration_conservation(m: DistributedMachine) -> List[str]:
    """Verify the migration-traffic books balance; returns violations.

    Per committed rescale: flow records must sum to ``records_moved``,
    per-flow packets must equal ``ceil(records / records_per_packet)``,
    and bytes must equal ``packets * packet_bits / 8`` (bytes out ==
    bytes in — the transfer is accounted once, on the wire).  Across the
    run, the switch model must have delivered every migration packet,
    dropped none, and carry one ``rescales`` tag per committed rescale.
    """
    notes: List[str] = []
    rpp = m.config.records_per_packet
    total_packets = 0
    for rec in m.rescale_log:
        flow_records = sum(f[2] for f in rec.flows)
        flow_packets = sum(f[3] for f in rec.flows)
        total_packets += rec.migration_packets
        if flow_records != rec.records_moved:
            notes.append(
                f"it {rec.iteration}: flow records {flow_records} != "
                f"records_moved {rec.records_moved}"
            )
        for src, dst, records, packets in rec.flows:
            if packets != -(-records // rpp):
                notes.append(
                    f"it {rec.iteration}: flow {src}->{dst} packets "
                    f"{packets} != ceil({records}/{rpp})"
                )
        if flow_packets != rec.migration_packets:
            notes.append(
                f"it {rec.iteration}: flow packets {flow_packets} != "
                f"migration_packets {rec.migration_packets}"
            )
        if rec.migration_bytes != rec.migration_packets * m.config.packet_bits // 8:
            notes.append(
                f"it {rec.iteration}: migration_bytes "
                f"{rec.migration_bytes} != packets x packet_bits/8"
            )
    sw = m.migration_switch_stats
    if sw.delivered != total_packets:
        notes.append(
            f"switch delivered {sw.delivered} != planned migration "
            f"packets {total_packets}"
        )
    if sw.dropped:
        notes.append(f"switch dropped {sw.dropped} committed packet(s)")
    if sw.rescales != len(m.rescale_log):
        notes.append(
            f"switch rescale tags {sw.rescales} != committed rescales "
            f"{len(m.rescale_log)}"
        )
    return notes


def run_rescale_demo(
    schedule: Tuple[int, ...] = DEFAULT_RESCALE_SCHEDULE,
    steps_per_segment: int = 2,
    dims: Tuple[int, int, int] = DEFAULT_RESCALE_DIMS,
    seed: int = 2023,
    particles_per_cell: int = 6,
) -> Dict[str, Any]:
    """Walk the acceptance schedule (grow 4 -> 6, shrink -> 3) fault-free.

    Runs one elastic machine through every size in ``schedule``,
    rescaling at each segment boundary, and checks each post-rescale
    segment bitwise against a fresh fixed-size machine primed with the
    boundary state — the "elastic == fresh at the new size" acceptance
    criterion — plus the migration-traffic conservation books.  Returns
    a JSON-able document (the ``repro rescale`` payload).
    """
    from repro.core.elasticity import fpga_grid_for

    system, _ = build_dataset(
        dims, particles_per_cell=particles_per_cell, seed=seed
    )
    m = _elastic_machine(dims, schedule[0], system, seed)
    m.run(steps_per_segment)
    segments: List[Dict[str, Any]] = [{
        "n_nodes": schedule[0],
        "fpga_grid": list(fpga_grid_for(dims, schedule[0])),
        "steps": steps_per_segment,
        "bitwise_identical": True,  # the elastic machine IS the reference
    }]
    for target in schedule[1:]:
        committed = m.rescale(target)
        if not committed:
            segments.append({
                "n_nodes": target,
                "fpga_grid": list(fpga_grid_for(dims, target)),
                "steps": 0,
                "bitwise_identical": False,
            })
            continue
        ref = _fixed_machine_from(dims, target, m)
        m.run(steps_per_segment)
        ref.run(steps_per_segment)
        segments.append({
            "n_nodes": target,
            "fpga_grid": list(fpga_grid_for(dims, target)),
            "steps": steps_per_segment,
            "bitwise_identical": bool(
                np.array_equal(m.system.positions, ref.system.positions)
                and np.array_equal(m._velocities32, ref._velocities32)
            ),
        })
    conservation = _check_migration_conservation(m)
    sw = m.migration_switch_stats
    return {
        "dims": list(dims),
        "schedule": list(schedule),
        "steps_per_segment": steps_per_segment,
        "seed": seed,
        "particles_per_cell": particles_per_cell,
        "segments": segments,
        "rescale_log": [asdict(r) for r in m.rescale_log],
        "aborted": [asdict(r) for r in m.rescale_aborted_log],
        "summary": m.recovery_summary(),
        "switch": {
            "delivered": sw.delivered,
            "dropped": sw.dropped,
            "rescales": sw.rescales,
            "loss_rate": sw.loss_rate,
        },
        "conservation": conservation,
        "conservation_ok": not conservation,
        "all_bitwise": all(s["bitwise_identical"] for s in segments),
    }


@dataclass(frozen=True)
class RescaleSoakCell:
    """One (frequency, fault rate, crash leg, seed) elasticity outcome."""

    frequency: int
    fault_rate: float
    crash_during: bool
    seed: int
    survived: bool
    n_attempts: int
    n_committed: int
    n_aborted: int
    #: Every aborted attempt left the machine bitwise at its pre-rescale
    #: state with the old partition — the rollback invariant.
    rollback_clean: bool
    #: Final trajectory bitwise equals a fault-free run replaying the
    #: committed schedule.
    bitwise_identical: bool
    conservation_ok: bool
    records_moved: int
    migration_packets: int
    final_nodes: int
    failure: Optional[str] = None

    @property
    def recovered(self) -> bool:
        """Survived with clean rollbacks, balanced books, no divergence."""
        return (
            self.survived
            and self.rollback_clean
            and self.bitwise_identical
            and self.conservation_ok
        )


@dataclass
class RescaleSoakResult:
    """Full elasticity-soak output: frequency x fault x crash x seed."""

    dims: Tuple[int, int, int]
    schedule: Tuple[int, ...]
    n_steps: int
    frequencies: Tuple[int, ...]
    fault_rates: Tuple[float, ...]
    seeds: Tuple[int, ...]
    cells: List[RescaleSoakCell] = field(default_factory=list)

    @property
    def unrecovered(self) -> int:
        """Cells with an unclean rollback, drift, or unbalanced books."""
        return sum(1 for c in self.cells if not c.recovered)

    def to_json(self) -> str:
        """Serialize for the CI artifact (stable key order)."""
        doc = asdict(self)
        doc["unrecovered"] = self.unrecovered
        return json.dumps(doc, indent=2, sort_keys=True)


def _soak_cell(
    dims, schedule, n_steps, freq, rate, crash, seed, particles_per_cell,
) -> RescaleSoakCell:
    """Run one elastic machine under migration faults; verify invariants."""
    from repro.faults import ChannelInjector

    system, _ = build_dataset(
        dims, particles_per_cell=particles_per_cell, seed=seed
    )
    injector = None
    if rate > 0:
        # Faults scoped to the migration channel: the position exchange
        # stays clean, so any divergence is the rescale path's fault.
        injector = ChannelInjector(
            FaultPlan(seed=seed, drop_rate=rate, corrupt_rate=rate / 2),
            "rescale",
        )
    node_faults = None
    if crash:
        # Scripted crash exactly at the first rescale boundary: after
        # ``freq`` steps the iteration counter reads ``freq + 1``.
        node_faults = NodeFaultPlan(
            events=(NodeFaultEvent(node=0, iteration=freq + 1),)
        )
    m = _elastic_machine(
        dims, schedule[0], system, seed,
        injector=injector, node_faults=node_faults,
    )
    targets = [schedule[(i + 1) % len(schedule)] for i in range(len(schedule))]
    cycle_pos = 0
    committed_at: Dict[int, int] = {}
    n_attempts = n_aborted = 0
    rollback_clean = True
    survived, failure = True, None
    try:
        for i in range(1, n_steps + 1):
            m.step()
            if i < n_steps and i % freq == 0:
                target = targets[cycle_pos % len(targets)]
                if target == m.config.n_fpgas:
                    cycle_pos += 1
                    continue
                before = _machine_state(m)
                n_attempts += 1
                if m.rescale(target):
                    committed_at[i] = target
                    cycle_pos += 1
                else:
                    n_aborted += 1
                    after = _machine_state(m)
                    if not _states_equal(before, after):
                        rollback_clean = False
    except (TransportError, NodeFailureError) as exc:
        survived, failure = False, str(exc)

    bitwise = False
    if survived:
        # Fault-free reference replaying exactly the committed schedule.
        ref = _elastic_machine(dims, schedule[0], system, seed)
        for i in range(1, n_steps + 1):
            ref.step()
            if i in committed_at:
                if not ref.rescale(committed_at[i]):
                    raise AssertionError(
                        "fault-free reference rescale cannot abort"
                    )
        bitwise = bool(
            np.array_equal(m.system.positions, ref.system.positions)
            and np.array_equal(m._velocities32, ref._velocities32)
        )
    conservation = _check_migration_conservation(m)
    return RescaleSoakCell(
        frequency=freq,
        fault_rate=rate,
        crash_during=crash,
        seed=seed,
        survived=survived,
        n_attempts=n_attempts,
        n_committed=len(committed_at),
        n_aborted=n_aborted,
        rollback_clean=rollback_clean,
        bitwise_identical=bitwise,
        conservation_ok=not conservation,
        records_moved=sum(r.records_moved for r in m.rescale_log),
        migration_packets=sum(r.migration_packets for r in m.rescale_log),
        final_nodes=m.config.n_fpgas,
        failure=failure,
    )


def run_rescale_soak(
    frequencies: Tuple[int, ...] = DEFAULT_RESCALE_FREQS,
    fault_rates: Tuple[float, ...] = DEFAULT_RESCALE_FAULT_RATES,
    n_steps: int = 6,
    dims: Tuple[int, int, int] = DEFAULT_RESCALE_DIMS,
    schedule: Tuple[int, ...] = DEFAULT_RESCALE_SCHEDULE,
    seeds: Tuple[int, ...] = DEFAULT_RESCALE_SEEDS,
    particles_per_cell: int = 4,
) -> RescaleSoakResult:
    """Chaos-compose elasticity: rescale cadence x migration faults x crash.

    Every cell runs an elastic machine that attempts the cyclic
    ``schedule`` at each ``frequency`` boundary while the ``"rescale"``
    channel drops/corrupts packets (and, on the crash legs, a board dies
    exactly at the first boundary).  The contract checked per cell:
    every abort rolls back bitwise to the pre-rescale state with the old
    partition; the final trajectory bitwise equals a fault-free run that
    replays only the committed rescales; and the migration-traffic books
    balance.  ``unrecovered`` must be zero — the `repro rescale` gate.
    """
    result = RescaleSoakResult(
        dims=tuple(dims), schedule=tuple(schedule), n_steps=n_steps,
        frequencies=tuple(frequencies), fault_rates=tuple(fault_rates),
        seeds=tuple(seeds),
    )
    for seed in seeds:
        for freq in frequencies:
            for rate in fault_rates:
                for crash in (False, True):
                    result.cells.append(
                        _soak_cell(
                            dims, schedule, n_steps, freq, rate, crash,
                            seed, particles_per_cell,
                        )
                    )
    return result


def format_rescale_demo(doc: Dict[str, Any]) -> str:
    """Human-readable narration of a ``run_rescale_demo`` document."""
    lines = [
        "Elastic rescale demo — schedule {sch} on {d} cells "
        "(seed {seed}, {sps} steps/segment)".format(
            sch=" -> ".join(map(str, doc["schedule"])),
            d="x".join(map(str, doc["dims"])),
            seed=doc["seed"],
            sps=doc["steps_per_segment"],
        ),
        "",
    ]
    for seg in doc["segments"]:
        lines.append(
            "  segment n={n} (grid {g}): {b}".format(
                n=seg["n_nodes"],
                g="x".join(map(str, seg["fpga_grid"])),
                b=(
                    "bitwise identical to fixed-size run"
                    if seg["bitwise_identical"]
                    else "DIVERGED"
                ),
            )
        )
    for rec in doc["rescale_log"]:
        lines.append(
            "  rescale @ it {it}: {no} -> {nn} nodes, {cells} cells / "
            "{recs} records in {fl} flow(s), {pk} packets "
            "({by} bytes, {cy:.0f} paced cycles)".format(
                it=rec["iteration"], no=rec["n_old"], nn=rec["n_new"],
                cells=rec["cells_moved"], recs=rec["records_moved"],
                fl=len(rec["flows"]), pk=rec["migration_packets"],
                by=rec["migration_bytes"], cy=rec["migration_cycles"],
            )
        )
    s = doc["summary"]
    lines += [
        "",
        "  conservation: {}".format(
            "bytes out == bytes in on every flow"
            if doc["conservation_ok"]
            else "VIOLATED: " + "; ".join(doc["conservation"])
        ),
        "  switch: delivered {dl}, dropped {dr}, {rs} rescale(s) tagged".format(
            dl=doc["switch"]["delivered"], dr=doc["switch"]["dropped"],
            rs=doc["switch"]["rescales"],
        ),
        "  summary: {p} planned / {a} aborted, {r} records moved, "
        "{c:.0f} migration cycles".format(
            p=s["rescales_planned"], a=s["rescales_aborted"],
            r=s["rescale_records_moved"], c=s["rescale_migration_cycles"],
        ),
    ]
    return "\n".join(lines)


def format_rescale_soak(result: RescaleSoakResult) -> str:
    """Render the elasticity soak as a rollback/divergence table."""
    rows = []
    for c in result.cells:
        rows.append(
            [
                c.frequency,
                f"{100 * c.fault_rate:g}%",
                "yes" if c.crash_during else "no",
                c.seed,
                f"{c.n_committed}/{c.n_attempts}",
                c.n_aborted,
                "clean" if c.rollback_clean else "DIRTY",
                "bitwise" if c.bitwise_identical else "DIVERGED",
                "ok" if c.conservation_ok else "VIOLATED",
                c.final_nodes,
            ]
        )
    return format_table(
        [
            "freq",
            "fault",
            "crash",
            "seed",
            "committed",
            "aborts",
            "rollback",
            "trajectory",
            "books",
            "nodes",
        ],
        rows,
        precision=0,
        title=(
            f"Elasticity soak — schedule "
            f"{' -> '.join(map(str, result.schedule))} on "
            f"{'x'.join(map(str, result.dims))} cells, {result.n_steps} "
            f"steps; {result.unrecovered} unrecovered of {len(result.cells)}"
        ),
    )

"""Fault sweep: survival and overhead under packet loss (loss x budget).

The paper's cluster runs bare UDP and keeps it lossless purely by pacing
transmissions with cooldown counters (Sec. 5.4).  This harness measures
what that choice costs when the losslessness assumption breaks: a grid
of injected loss rates crossed with reliable-transport retry budgets,
reporting for each cell whether the run survived, how far the trajectory
drifted from the fault-free baseline, how many halo records degraded to
stale snapshots, and the retransmission cycle overhead.  A companion
sweep exercises the chained-synchronization protocol, where a lost
``last`` signal under bare UDP deadlocks the handshake — the progress
watchdog's diagnosis (naming the stuck node and missing edge) is
captured verbatim.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.sync import diagnose_dead_node, run_chained_sync
from repro.faults import (
    FaultInjector,
    FaultPlan,
    NodeFaultEvent,
    NodeFaultPlan,
    TransportConfig,
)
from repro.harness.report import format_table
from repro.md import build_dataset
from repro.network.topology import TorusTopology
from repro.util.errors import DeadlockError, NodeFailureError, TransportError

#: Loss rates swept by default; 0.01 is the acceptance operating point.
DEFAULT_LOSS_RATES = (0.0, 0.01, 0.02)
#: Retry budgets swept for the reliable transport (budget 0 = one shot).
DEFAULT_RETRY_BUDGETS = (0, 1, 2)


@dataclass(frozen=True)
class FaultSweepCell:
    """One (loss rate, transport mode) outcome of the machine sweep."""

    loss_rate: float
    mode: str  # "reliable" or "bare"
    retry_budget: Optional[int]  # None for bare UDP
    survived: bool
    bitwise_identical: bool
    max_position_error: float  # angstrom vs fault-free; nan if dead
    degraded_records: int
    packets_sent: int
    retransmits: int
    lost_packets: int
    overhead_cycles: float
    failure: Optional[str] = None  # error text when not survived


@dataclass(frozen=True)
class SyncFaultRow:
    """One (loss rate, transport mode) outcome of the sync-protocol sweep."""

    loss_rate: float
    mode: str
    completed: bool
    makespan: float  # cycles; nan when deadlocked
    overhead_percent: float  # vs fault-free makespan; nan when deadlocked
    retransmits: int
    lost: int
    deadlock: Optional[str] = None  # watchdog diagnosis when deadlocked


@dataclass
class FaultSweepResult:
    """Full sweep output (machine grid + sync-protocol rows)."""

    dims: Tuple[int, int, int]
    fpga_dims: Tuple[int, int, int]
    n_steps: int
    seed: int
    cells: List[FaultSweepCell] = field(default_factory=list)
    sync_baseline_makespan: float = 0.0
    sync_rows: List[SyncFaultRow] = field(default_factory=list)

    def to_json(self) -> str:
        """Serialize for the CI artifact (stable key order)."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)


def _run_machine(
    cfg: MachineConfig,
    system,
    n_steps: int,
    injector: Optional[FaultInjector] = None,
    transport: Optional[TransportConfig] = None,
) -> DistributedMachine:
    machine = DistributedMachine(
        cfg, system=system.copy(), injector=injector, transport=transport
    )
    for _ in range(n_steps):
        machine.step()
    return machine


def _cell(
    cfg: MachineConfig,
    system,
    baseline: np.ndarray,
    n_steps: int,
    seed: int,
    loss: float,
    budget: Optional[int],
) -> FaultSweepCell:
    bare = budget is None
    plan = FaultPlan(
        seed=seed,
        drop_rate=loss,
        # Bare UDP degrades onto stale snapshots, which requires one
        # clean exchange to populate the cache; the reliable transport
        # needs no warm-up.
        onset_iteration=1 if bare else 0,
    )
    injector = FaultInjector(plan)
    transport = None if bare else TransportConfig(retry_budget=budget)
    mode = "bare" if bare else "reliable"
    try:
        machine = _run_machine(cfg, system, n_steps, injector, transport)
    except TransportError as exc:
        return FaultSweepCell(
            loss_rate=loss,
            mode=mode,
            retry_budget=budget,
            survived=False,
            bitwise_identical=False,
            max_position_error=float("nan"),
            degraded_records=0,
            packets_sent=0,
            retransmits=0,
            lost_packets=0,
            overhead_cycles=0.0,
            failure=str(exc),
        )
    err = float(np.abs(machine.system.positions - baseline).max())
    ts = machine.transport_stats
    return FaultSweepCell(
        loss_rate=loss,
        mode=mode,
        retry_budget=budget,
        survived=True,
        bitwise_identical=bool(
            np.array_equal(machine.system.positions, baseline)
        ),
        max_position_error=err,
        degraded_records=machine.degraded_records_total,
        packets_sent=ts.packets_sent,
        retransmits=ts.retransmits,
        lost_packets=ts.lost,
        overhead_cycles=ts.overhead_cycles,
    )


def _sync_row(
    topology: TorusTopology,
    n_iterations: int,
    baseline_makespan: float,
    seed: int,
    loss: float,
    reliable: bool,
) -> SyncFaultRow:
    injector = FaultInjector(FaultPlan(seed=seed, drop_rate=loss))
    transport = TransportConfig(retry_budget=3) if reliable else None
    mode = "reliable" if reliable else "bare"
    try:
        res = run_chained_sync(
            topology,
            lambda node, it: 10_000.0,
            n_iterations,
            injector=injector,
            transport=transport,
        )
    except DeadlockError as exc:
        return SyncFaultRow(
            loss_rate=loss,
            mode=mode,
            completed=False,
            makespan=float("nan"),
            overhead_percent=float("nan"),
            retransmits=0,
            lost=0,
            deadlock=str(exc),
        )
    counts = res.fault_counts or {}
    return SyncFaultRow(
        loss_rate=loss,
        mode=mode,
        completed=True,
        makespan=res.makespan,
        overhead_percent=100.0 * (res.makespan / baseline_makespan - 1.0),
        retransmits=counts.get("retransmits", 0),
        lost=counts.get("lost", 0),
    )


def run_fault_sweep(
    loss_rates: Tuple[float, ...] = DEFAULT_LOSS_RATES,
    retry_budgets: Tuple[int, ...] = DEFAULT_RETRY_BUDGETS,
    n_steps: int = 3,
    sync_iterations: int = 12,
    dims: Tuple[int, int, int] = (4, 4, 4),
    fpga_dims: Tuple[int, int, int] = (2, 2, 2),
    seed: int = 2023,
) -> FaultSweepResult:
    """Sweep loss rate x retry budget on the distributed machine + sync.

    Every run reuses the same dataset and fault seed, so cells differ
    only in the declared loss rate and transport policy.  Each loss rate
    gets one bare-UDP cell (retry_budget None) alongside the reliable
    cells; the sync sweep runs the chained-synchronization protocol once
    per (loss, mode) and captures the deadlock diagnosis when bare UDP
    loses a handshake signal.
    """
    cfg = MachineConfig(dims, fpga_dims)
    system, _ = build_dataset(dims, particles_per_cell=16, seed=seed)
    baseline = _run_machine(cfg, system, n_steps).system.positions

    result = FaultSweepResult(
        dims=tuple(dims), fpga_dims=tuple(fpga_dims), n_steps=n_steps, seed=seed
    )
    for loss in loss_rates:
        for budget in retry_budgets:
            result.cells.append(
                _cell(cfg, system, baseline, n_steps, seed, loss, budget)
            )
        result.cells.append(
            _cell(cfg, system, baseline, n_steps, seed, loss, None)
        )

    topology = TorusTopology(fpga_dims)
    result.sync_baseline_makespan = run_chained_sync(
        topology, lambda node, it: 10_000.0, sync_iterations
    ).makespan
    for loss in loss_rates:
        for reliable in (True, False):
            result.sync_rows.append(
                _sync_row(
                    topology,
                    sync_iterations,
                    result.sync_baseline_makespan,
                    seed,
                    loss,
                    reliable,
                )
            )
    return result


def format_fault_sweep(result: FaultSweepResult) -> str:
    """Render the sweep as the survival/overhead tables."""
    rows = []
    for c in result.cells:
        rows.append(
            [
                f"{100 * c.loss_rate:.0f}%",
                c.mode if c.retry_budget is None else f"{c.mode} b={c.retry_budget}",
                "yes" if c.survived else "DEAD",
                (
                    "bitwise"
                    if c.bitwise_identical
                    else (f"{c.max_position_error:.2e}" if c.survived else "-")
                ),
                c.degraded_records,
                c.retransmits,
                c.lost_packets,
                c.overhead_cycles,
            ]
        )
    machine_table = format_table(
        [
            "loss",
            "transport",
            "survived",
            "traj err (A)",
            "degraded",
            "retx",
            "lost",
            "overhead (cyc)",
        ],
        rows,
        precision=0,
        title=(
            f"Fault sweep — {result.n_steps} steps on "
            f"{'x'.join(map(str, result.dims))} cells / "
            f"{'x'.join(map(str, result.fpga_dims))} nodes (seed {result.seed})"
        ),
    )

    sync_rows = []
    for r in result.sync_rows:
        sync_rows.append(
            [
                f"{100 * r.loss_rate:.0f}%",
                r.mode,
                "yes" if r.completed else "DEADLOCK",
                r.makespan if r.completed else None,
                f"{r.overhead_percent:+.2f}%" if r.completed else "-",
                r.retransmits,
                r.lost,
            ]
        )
    sync_table = format_table(
        ["loss", "transport", "completed", "makespan", "overhead", "retx", "lost"],
        sync_rows,
        precision=0,
        title=(
            "Chained sync under loss — baseline makespan "
            f"{result.sync_baseline_makespan:.0f} cycles"
        ),
    )

    notes = []
    for r in result.sync_rows:
        if r.deadlock:
            notes.append(
                f"  loss {100 * r.loss_rate:.0f}% {r.mode}: {r.deadlock}"
            )
    diagnosis = (
        "\nwatchdog diagnoses:\n" + "\n".join(notes) if notes else ""
    )
    return machine_table + "\n\n" + sync_table + diagnosis


# ---------------------------------------------------------------------------
# Node-failure chaos soak (MTBF x shadow-checkpoint interval)
# ---------------------------------------------------------------------------

#: Node mean-time-between-failures values swept by default (iterations).
DEFAULT_NODE_MTBFS = (3.0, 6.0)
#: Shadow-checkpoint intervals swept by default (iterations).
DEFAULT_SHADOW_INTERVALS = (1, 2, 4)
#: Seeds the soak repeats every grid cell over.
DEFAULT_SOAK_SEEDS = (2023, 2024, 2025)


@dataclass(frozen=True)
class NodeSoakCell:
    """One (MTBF, shadow interval, seed) outcome of the chaos soak."""

    mtbf_iterations: float
    shadow_interval: int
    seed: int
    survived: bool
    bitwise_identical: bool
    n_recoveries: int
    cells_moved: int
    records_moved: int
    recovery_traffic_records: int
    shadow_traffic_records: int
    cycles_lost: float
    failure: Optional[str] = None

    @property
    def recovered(self) -> bool:
        """Survived *and* landed bitwise on the fault-free trajectory."""
        return self.survived and self.bitwise_identical


@dataclass
class NodeSoakResult:
    """Full chaos-soak output: the MTBF x interval x seed grid."""

    dims: Tuple[int, int, int]
    fpga_dims: Tuple[int, int, int]
    n_steps: int
    mtbfs: Tuple[float, ...]
    intervals: Tuple[int, ...]
    seeds: Tuple[int, ...]
    cells: List[NodeSoakCell] = field(default_factory=list)

    @property
    def unrecovered(self) -> int:
        """Runs that died or drifted — the CI soak gate requires zero."""
        return sum(1 for c in self.cells if not c.recovered)

    def to_json(self) -> str:
        """Serialize for the CI artifact (stable key order)."""
        doc = asdict(self)
        doc["unrecovered"] = self.unrecovered
        return json.dumps(doc, indent=2, sort_keys=True)


def run_node_soak(
    mtbfs: Tuple[float, ...] = DEFAULT_NODE_MTBFS,
    intervals: Tuple[int, ...] = DEFAULT_SHADOW_INTERVALS,
    n_steps: int = 6,
    dims: Tuple[int, int, int] = (4, 4, 4),
    fpga_dims: Tuple[int, int, int] = (2, 2, 2),
    seeds: Tuple[int, ...] = DEFAULT_SOAK_SEEDS,
) -> NodeSoakResult:
    """Chaos-soak the node-crash recovery protocol over an MTBF grid.

    For every (MTBF, shadow interval, seed) the distributed machine runs
    with random crash/restart faults and the final positions are
    compared bitwise against that seed's fault-free baseline — the
    recovery contract says only traffic/cycle accounting may differ.
    The grid exposes the trade the ``shadow_interval`` knob buys:
    shorter intervals shrink replay (``cycles_lost``) but grow
    steady-state ``shadow_traffic_records``.
    """
    cfg = MachineConfig(dims, fpga_dims)
    result = NodeSoakResult(
        dims=tuple(dims), fpga_dims=tuple(fpga_dims), n_steps=n_steps,
        mtbfs=tuple(mtbfs), intervals=tuple(intervals), seeds=tuple(seeds),
    )
    for seed in seeds:
        system, _ = build_dataset(dims, particles_per_cell=16, seed=seed)
        baseline = _run_machine(cfg, system, n_steps).system.positions
        for mtbf in mtbfs:
            for interval in intervals:
                plan = NodeFaultPlan.from_mtbf(mtbf, seed=seed)
                machine = DistributedMachine(
                    cfg, system=system.copy(), node_faults=plan,
                    shadow_interval=interval,
                )
                failure = None
                try:
                    for _ in range(n_steps):
                        machine.step()
                    survived = True
                except NodeFailureError as exc:
                    survived, failure = False, str(exc)
                summary = machine.recovery_summary()
                result.cells.append(
                    NodeSoakCell(
                        mtbf_iterations=mtbf,
                        shadow_interval=interval,
                        seed=seed,
                        survived=survived,
                        bitwise_identical=survived and bool(
                            np.array_equal(machine.system.positions, baseline)
                        ),
                        n_recoveries=summary["n_recoveries"],
                        cells_moved=summary["cells_moved"],
                        records_moved=summary["records_moved"],
                        recovery_traffic_records=summary[
                            "recovery_traffic_records"
                        ],
                        shadow_traffic_records=summary[
                            "shadow_traffic_records"
                        ],
                        cycles_lost=summary["cycles_lost"],
                        failure=failure,
                    )
                )
    return result


def format_node_soak(result: NodeSoakResult) -> str:
    """Render the chaos soak as a recovery-accounting table."""
    rows = []
    for c in result.cells:
        rows.append(
            [
                f"{c.mtbf_iterations:g}",
                c.shadow_interval,
                c.seed,
                "yes" if c.survived else "DEAD",
                "bitwise" if c.bitwise_identical else "-",
                c.n_recoveries,
                c.records_moved,
                c.shadow_traffic_records,
                c.cycles_lost,
            ]
        )
    table = format_table(
        [
            "mtbf",
            "shadow",
            "seed",
            "survived",
            "trajectory",
            "recoveries",
            "moved",
            "shadow tfc",
            "cycles lost",
        ],
        rows,
        precision=0,
        title=(
            f"Node-failure soak — {result.n_steps} steps on "
            f"{'x'.join(map(str, result.dims))} cells / "
            f"{'x'.join(map(str, result.fpga_dims))} nodes; "
            f"{result.unrecovered} unrecovered of {len(result.cells)}"
        ),
    )
    return table


# ---------------------------------------------------------------------------
# Single-crash recovery demo (the `repro recover` CLI walk-through)
# ---------------------------------------------------------------------------


def run_recovery_demo(
    node: int = 1,
    iteration: int = 3,
    n_steps: int = 5,
    dims: Tuple[int, int, int] = (4, 4, 4),
    fpga_dims: Tuple[int, int, int] = (2, 2, 2),
    seed: int = 2023,
    shadow_interval: int = 2,
) -> Dict[str, Any]:
    """Kill one node at a scripted iteration and narrate the recovery.

    Runs the fault-free baseline, then the same seed with a scripted
    crash of ``node`` at ``iteration``; verifies the recovered
    trajectory is bitwise identical; captures the survivors' watchdog
    diagnosis of the silent peer; pushes the restore/replay traffic
    through the packet-level switch; and folds the recovery aggregates
    into a measured :class:`~repro.core.machine.StepStats`.  Returns a
    JSON-able document (the ``repro recover`` payload).
    """
    from repro.core.machine import FasdaMachine
    from repro.network.netsim import Burst, OutputQueuedSwitch, SwitchStats

    cfg = MachineConfig(dims, fpga_dims)
    system, _ = build_dataset(dims, particles_per_cell=16, seed=seed)
    baseline = _run_machine(cfg, system, n_steps)

    plan = NodeFaultPlan(
        events=(NodeFaultEvent(node=node, iteration=iteration),)
    )
    machine = DistributedMachine(
        cfg, system=system.copy(), node_faults=plan,
        shadow_interval=shadow_interval,
    )
    for _ in range(n_steps):
        machine.step()
    bitwise = bool(
        np.array_equal(machine.system.positions, baseline.system.positions)
    )

    # The survivors' view: the chained-sync watchdog names the dead peer.
    diagnosis = diagnose_dead_node(TorusTopology(tuple(fpga_dims)), node)

    # Restore/replay traffic rides the same switch as halo exchange —
    # account for it at packet granularity and tag the merged stats.
    switch = OutputQueuedSwitch(machine.config.n_fpgas)
    switch_stats = SwitchStats(delivered=0, dropped=0)
    for rec in machine.recovery_log:
        restore = switch.run(
            [Burst(src=rec.buddy, dst=rec.node,
                   n_packets=rec.records_moved, gap_cycles=4)],
            channel="recovery",
            iteration=rec.crash_iteration,
        )
        switch_stats = switch_stats + SwitchStats(
            delivered=restore.delivered,
            dropped=restore.dropped,
            max_occupancy=restore.max_occupancy,
            recoveries=1,
        )

    # Fold the aggregates into one measured force-evaluation pass so the
    # per-step accounting surfaces next to the workload counters.
    summary = machine.recovery_summary()
    probe = FasdaMachine(cfg, system=system.copy())
    stats = probe.compute_forces()
    stats.recoveries = summary["n_recoveries"]
    stats.recovery_cycles = summary["cycles_lost"]

    return {
        "dims": list(dims),
        "fpga_dims": list(fpga_dims),
        "seed": seed,
        "n_steps": n_steps,
        "crashed_node": node,
        "crash_iteration": iteration,
        "shadow_interval": shadow_interval,
        "bitwise_identical": bitwise,
        "watchdog_diagnosis": diagnosis,
        "recovery_log": [asdict(r) for r in machine.recovery_log],
        "summary": summary,
        "switch": {
            "delivered": switch_stats.delivered,
            "dropped": switch_stats.dropped,
            "recoveries": switch_stats.recoveries,
            "loss_rate": switch_stats.loss_rate,
        },
        "step_stats": {
            "recoveries": stats.recoveries,
            "recovery_cycles": stats.recovery_cycles,
            "potential_energy": stats.potential_energy,
        },
    }


def format_recovery_demo(doc: Dict[str, Any]) -> str:
    """Human-readable narration of a ``run_recovery_demo`` document."""
    lines = [
        "Node-failure recovery demo — node {crashed_node} killed at "
        "iteration {crash_iteration} ({n} steps on {d} cells / {f} nodes, "
        "seed {seed})".format(
            crashed_node=doc["crashed_node"],
            crash_iteration=doc["crash_iteration"],
            n=doc["n_steps"],
            d="x".join(map(str, doc["dims"])),
            f="x".join(map(str, doc["fpga_dims"])),
            seed=doc["seed"],
        ),
        "",
    ]
    for rec in doc["recovery_log"]:
        lines.append(
            "  crash @ it {it}: node {node} -> buddy {buddy}, replayed "
            "{rp} iteration(s) from shadow @ it {sh}; {cells} cells / "
            "{recs} records moved, {cyc:.0f} cycles lost".format(
                it=rec["crash_iteration"], node=rec["node"],
                buddy=rec["buddy"], rp=rec["replay_iterations"],
                sh=rec["shadow_iteration"], cells=rec["cells_moved"],
                recs=rec["records_moved"], cyc=rec["cycles_lost"],
            )
        )
    s = doc["summary"]
    lines += [
        "",
        "  trajectory: {}".format(
            "bitwise identical to fault-free run"
            if doc["bitwise_identical"]
            else "DIVERGED from fault-free run"
        ),
        f"  watchdog: {doc['watchdog_diagnosis']}",
        "  traffic: {rt} recovery + {st} shadow records; switch delivered "
        "{dl} recovery packets ({nr} recoveries tagged)".format(
            rt=s["recovery_traffic_records"],
            st=s["shadow_traffic_records"],
            dl=doc["switch"]["delivered"],
            nr=doc["switch"]["recoveries"],
        ),
    ]
    return "\n".join(lines)

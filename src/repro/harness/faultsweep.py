"""Fault sweep: survival and overhead under packet loss (loss x budget).

The paper's cluster runs bare UDP and keeps it lossless purely by pacing
transmissions with cooldown counters (Sec. 5.4).  This harness measures
what that choice costs when the losslessness assumption breaks: a grid
of injected loss rates crossed with reliable-transport retry budgets,
reporting for each cell whether the run survived, how far the trajectory
drifted from the fault-free baseline, how many halo records degraded to
stale snapshots, and the retransmission cycle overhead.  A companion
sweep exercises the chained-synchronization protocol, where a lost
``last`` signal under bare UDP deadlocks the handshake — the progress
watchdog's diagnosis (naming the stuck node and missing edge) is
captured verbatim.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.sync import run_chained_sync
from repro.faults import FaultInjector, FaultPlan, TransportConfig
from repro.harness.report import format_table
from repro.md import build_dataset
from repro.network.topology import TorusTopology
from repro.util.errors import DeadlockError, TransportError

#: Loss rates swept by default; 0.01 is the acceptance operating point.
DEFAULT_LOSS_RATES = (0.0, 0.01, 0.02)
#: Retry budgets swept for the reliable transport (budget 0 = one shot).
DEFAULT_RETRY_BUDGETS = (0, 1, 2)


@dataclass(frozen=True)
class FaultSweepCell:
    """One (loss rate, transport mode) outcome of the machine sweep."""

    loss_rate: float
    mode: str  # "reliable" or "bare"
    retry_budget: Optional[int]  # None for bare UDP
    survived: bool
    bitwise_identical: bool
    max_position_error: float  # angstrom vs fault-free; nan if dead
    degraded_records: int
    packets_sent: int
    retransmits: int
    lost_packets: int
    overhead_cycles: float
    failure: Optional[str] = None  # error text when not survived


@dataclass(frozen=True)
class SyncFaultRow:
    """One (loss rate, transport mode) outcome of the sync-protocol sweep."""

    loss_rate: float
    mode: str
    completed: bool
    makespan: float  # cycles; nan when deadlocked
    overhead_percent: float  # vs fault-free makespan; nan when deadlocked
    retransmits: int
    lost: int
    deadlock: Optional[str] = None  # watchdog diagnosis when deadlocked


@dataclass
class FaultSweepResult:
    """Full sweep output (machine grid + sync-protocol rows)."""

    dims: Tuple[int, int, int]
    fpga_dims: Tuple[int, int, int]
    n_steps: int
    seed: int
    cells: List[FaultSweepCell] = field(default_factory=list)
    sync_baseline_makespan: float = 0.0
    sync_rows: List[SyncFaultRow] = field(default_factory=list)

    def to_json(self) -> str:
        """Serialize for the CI artifact (stable key order)."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)


def _run_machine(
    cfg: MachineConfig,
    system,
    n_steps: int,
    injector: Optional[FaultInjector] = None,
    transport: Optional[TransportConfig] = None,
) -> DistributedMachine:
    machine = DistributedMachine(
        cfg, system=system.copy(), injector=injector, transport=transport
    )
    for _ in range(n_steps):
        machine.step()
    return machine


def _cell(
    cfg: MachineConfig,
    system,
    baseline: np.ndarray,
    n_steps: int,
    seed: int,
    loss: float,
    budget: Optional[int],
) -> FaultSweepCell:
    bare = budget is None
    plan = FaultPlan(
        seed=seed,
        drop_rate=loss,
        # Bare UDP degrades onto stale snapshots, which requires one
        # clean exchange to populate the cache; the reliable transport
        # needs no warm-up.
        onset_iteration=1 if bare else 0,
    )
    injector = FaultInjector(plan)
    transport = None if bare else TransportConfig(retry_budget=budget)
    mode = "bare" if bare else "reliable"
    try:
        machine = _run_machine(cfg, system, n_steps, injector, transport)
    except TransportError as exc:
        return FaultSweepCell(
            loss_rate=loss,
            mode=mode,
            retry_budget=budget,
            survived=False,
            bitwise_identical=False,
            max_position_error=float("nan"),
            degraded_records=0,
            packets_sent=0,
            retransmits=0,
            lost_packets=0,
            overhead_cycles=0.0,
            failure=str(exc),
        )
    err = float(np.abs(machine.system.positions - baseline).max())
    ts = machine.transport_stats
    return FaultSweepCell(
        loss_rate=loss,
        mode=mode,
        retry_budget=budget,
        survived=True,
        bitwise_identical=bool(
            np.array_equal(machine.system.positions, baseline)
        ),
        max_position_error=err,
        degraded_records=machine.degraded_records_total,
        packets_sent=ts.packets_sent,
        retransmits=ts.retransmits,
        lost_packets=ts.lost,
        overhead_cycles=ts.overhead_cycles,
    )


def _sync_row(
    topology: TorusTopology,
    n_iterations: int,
    baseline_makespan: float,
    seed: int,
    loss: float,
    reliable: bool,
) -> SyncFaultRow:
    injector = FaultInjector(FaultPlan(seed=seed, drop_rate=loss))
    transport = TransportConfig(retry_budget=3) if reliable else None
    mode = "reliable" if reliable else "bare"
    try:
        res = run_chained_sync(
            topology,
            lambda node, it: 10_000.0,
            n_iterations,
            injector=injector,
            transport=transport,
        )
    except DeadlockError as exc:
        return SyncFaultRow(
            loss_rate=loss,
            mode=mode,
            completed=False,
            makespan=float("nan"),
            overhead_percent=float("nan"),
            retransmits=0,
            lost=0,
            deadlock=str(exc),
        )
    counts = res.fault_counts or {}
    return SyncFaultRow(
        loss_rate=loss,
        mode=mode,
        completed=True,
        makespan=res.makespan,
        overhead_percent=100.0 * (res.makespan / baseline_makespan - 1.0),
        retransmits=counts.get("retransmits", 0),
        lost=counts.get("lost", 0),
    )


def run_fault_sweep(
    loss_rates: Tuple[float, ...] = DEFAULT_LOSS_RATES,
    retry_budgets: Tuple[int, ...] = DEFAULT_RETRY_BUDGETS,
    n_steps: int = 3,
    sync_iterations: int = 12,
    dims: Tuple[int, int, int] = (4, 4, 4),
    fpga_dims: Tuple[int, int, int] = (2, 2, 2),
    seed: int = 2023,
) -> FaultSweepResult:
    """Sweep loss rate x retry budget on the distributed machine + sync.

    Every run reuses the same dataset and fault seed, so cells differ
    only in the declared loss rate and transport policy.  Each loss rate
    gets one bare-UDP cell (retry_budget None) alongside the reliable
    cells; the sync sweep runs the chained-synchronization protocol once
    per (loss, mode) and captures the deadlock diagnosis when bare UDP
    loses a handshake signal.
    """
    cfg = MachineConfig(dims, fpga_dims)
    system, _ = build_dataset(dims, particles_per_cell=16, seed=seed)
    baseline = _run_machine(cfg, system, n_steps).system.positions

    result = FaultSweepResult(
        dims=tuple(dims), fpga_dims=tuple(fpga_dims), n_steps=n_steps, seed=seed
    )
    for loss in loss_rates:
        for budget in retry_budgets:
            result.cells.append(
                _cell(cfg, system, baseline, n_steps, seed, loss, budget)
            )
        result.cells.append(
            _cell(cfg, system, baseline, n_steps, seed, loss, None)
        )

    topology = TorusTopology(fpga_dims)
    result.sync_baseline_makespan = run_chained_sync(
        topology, lambda node, it: 10_000.0, sync_iterations
    ).makespan
    for loss in loss_rates:
        for reliable in (True, False):
            result.sync_rows.append(
                _sync_row(
                    topology,
                    sync_iterations,
                    result.sync_baseline_makespan,
                    seed,
                    loss,
                    reliable,
                )
            )
    return result


def format_fault_sweep(result: FaultSweepResult) -> str:
    """Render the sweep as the survival/overhead tables."""
    rows = []
    for c in result.cells:
        rows.append(
            [
                f"{100 * c.loss_rate:.0f}%",
                c.mode if c.retry_budget is None else f"{c.mode} b={c.retry_budget}",
                "yes" if c.survived else "DEAD",
                (
                    "bitwise"
                    if c.bitwise_identical
                    else (f"{c.max_position_error:.2e}" if c.survived else "-")
                ),
                c.degraded_records,
                c.retransmits,
                c.lost_packets,
                c.overhead_cycles,
            ]
        )
    machine_table = format_table(
        [
            "loss",
            "transport",
            "survived",
            "traj err (A)",
            "degraded",
            "retx",
            "lost",
            "overhead (cyc)",
        ],
        rows,
        precision=0,
        title=(
            f"Fault sweep — {result.n_steps} steps on "
            f"{'x'.join(map(str, result.dims))} cells / "
            f"{'x'.join(map(str, result.fpga_dims))} nodes (seed {result.seed})"
        ),
    )

    sync_rows = []
    for r in result.sync_rows:
        sync_rows.append(
            [
                f"{100 * r.loss_rate:.0f}%",
                r.mode,
                "yes" if r.completed else "DEADLOCK",
                r.makespan if r.completed else None,
                f"{r.overhead_percent:+.2f}%" if r.completed else "-",
                r.retransmits,
                r.lost,
            ]
        )
    sync_table = format_table(
        ["loss", "transport", "completed", "makespan", "overhead", "retx", "lost"],
        sync_rows,
        precision=0,
        title=(
            "Chained sync under loss — baseline makespan "
            f"{result.sync_baseline_makespan:.0f} cycles"
        ),
    )

    notes = []
    for r in result.sync_rows:
        if r.deadlock:
            notes.append(
                f"  loss {100 * r.loss_rate:.0f}% {r.mode}: {r.deadlock}"
            )
    diagnosis = (
        "\nwatchdog diagnoses:\n" + "\n".join(notes) if notes else ""
    )
    return machine_table + "\n\n" + sync_table + diagnosis

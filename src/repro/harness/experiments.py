"""Experiment drivers reproducing every table and figure in the paper's
evaluation (Sec. 5).

Each driver is deterministic given its seed and returns a result object
whose fields mirror the rows/series of the corresponding paper artifact;
``format_*`` companions render them as text.  Benchmarks wrap these so
``pytest benchmarks/ --benchmark-only`` regenerates the whole evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import (
    MachineConfig,
    simulated_scaling_configs,
    strong_scaling_configs,
    weak_scaling_configs,
)
from repro.core.cycles import CyclePerformance, estimate_performance
from repro.core.machine import FasdaMachine
from repro.core.resources import PAPER_TABLE1, estimate_resources
from repro.md import ReferenceEngine, build_dataset
from repro.network.fabric import Fabric
from repro.network.topology import TorusTopology
from repro.perf.cpu import CpuPerformanceModel
from repro.perf.gpu import GpuPerformanceModel
from repro.harness.report import format_table

#: Thread counts the paper sweeps for the CPU baseline.
CPU_THREADS = (1, 2, 4, 8, 16, 32)


def _measure(config: MachineConfig, seed: int = 2023) -> CyclePerformance:
    machine = FasdaMachine(config, seed=seed)
    return estimate_performance(config, machine.measure_workload())


# ---------------------------------------------------------------------------
# Figure 16: scalability comparison
# ---------------------------------------------------------------------------


@dataclass
class Fig16Row:
    """One simulation-space configuration's rates in us/day."""

    name: str
    n_particles: int
    fpga: Optional[float]
    fpga_label: str
    cpu_by_threads: Dict[int, float]
    gpu_a100: Dict[int, float]
    gpu_v100: Dict[int, float]

    @property
    def best_cpu(self) -> float:
        return max(self.cpu_by_threads.values())

    @property
    def best_gpu(self) -> float:
        return max(list(self.gpu_a100.values()) + list(self.gpu_v100.values()))


@dataclass
class Fig16Result:
    """All three sections of Fig. 16."""

    weak: List[Fig16Row]
    strong: List[Fig16Row]
    simulated: List[Fig16Row]
    strong_speedup_c_over_a: float
    speedup_vs_best_gpu: float


def _baseline_rates(n_particles: int) -> Tuple[Dict[int, float], Dict[int, float], Dict[int, float]]:
    cpu = CpuPerformanceModel()
    a100 = GpuPerformanceModel("a100")
    v100 = GpuPerformanceModel("v100")
    cpu_rates = {t: cpu.rate_us_per_day(t, n_particles) for t in CPU_THREADS}
    a_rates = {n: a100.rate_us_per_day(n, n_particles) for n in (1, 2)}
    v_rates = {n: v100.rate_us_per_day(n, n_particles) for n in (1, 2, 4)}
    return cpu_rates, a_rates, v_rates


def run_fig16(seed: int = 2023) -> Fig16Result:
    """Reproduce Fig. 16: weak scaling, strong scaling, simulated scale-out.

    FPGA rates come from the first-principles cycle model on measured
    workloads; CPU/GPU rates from the calibrated baseline models.
    """
    weak_rows: List[Fig16Row] = []
    for name, cfg in weak_scaling_configs().items():
        perf = _measure(cfg, seed)
        n = cfg.n_cells * 64
        cpu_r, a_r, v_r = _baseline_rates(n)
        weak_rows.append(
            Fig16Row(name, n, perf.rate_us_per_day, f"{cfg.n_fpgas}-F", cpu_r, a_r, v_r)
        )

    strong_rows: List[Fig16Row] = []
    strong_perf: Dict[str, CyclePerformance] = {}
    for name, cfg in strong_scaling_configs().items():
        perf = _measure(cfg, seed)
        strong_perf[name] = perf
        n = cfg.n_cells * 64
        cpu_r, a_r, v_r = _baseline_rates(n)
        label = f"{cfg.spes_per_cbb}-SPE {cfg.pes_per_spe}-PE"
        strong_rows.append(
            Fig16Row(name, n, perf.rate_us_per_day, label, cpu_r, a_r, v_r)
        )

    sim_rows: List[Fig16Row] = []
    for name, cfg in simulated_scaling_configs().items():
        perf = _measure(cfg, seed)
        n = cfg.n_cells * 64
        cpu_r, a_r, v_r = _baseline_rates(n)
        sim_rows.append(
            Fig16Row(name, n, perf.rate_us_per_day, f"{cfg.n_fpgas}-F sim", cpu_r, a_r, v_r)
        )

    c_over_a = (
        strong_perf["4x4x4-C"].rate_us_per_day
        / strong_perf["4x4x4-A"].rate_us_per_day
    )
    best_gpu = strong_rows[0].best_gpu  # all strong rows share N = 4096
    vs_gpu = strong_perf["4x4x4-C"].rate_us_per_day / best_gpu
    return Fig16Result(weak_rows, strong_rows, sim_rows, c_over_a, vs_gpu)


def format_fig16(result: Fig16Result) -> str:
    def rows_for(section: List[Fig16Row]):
        out = []
        for r in section:
            out.append(
                [
                    r.name,
                    r.n_particles,
                    r.fpga,
                    r.cpu_by_threads[1],
                    r.cpu_by_threads[4],
                    r.cpu_by_threads[16],
                    r.cpu_by_threads[32],
                    r.gpu_a100[1],
                    r.gpu_a100[2],
                    r.gpu_v100[4],
                ]
            )
        return out

    headers = [
        "config", "N", "FPGA", "CPUx1", "CPUx4", "CPUx16", "CPUx32",
        "1xA100", "2xA100", "4xV100",
    ]
    from repro.harness.report import format_bar_chart

    strong_rows = result.strong
    chart = format_bar_chart(
        [f"{r.name} FPGA" for r in strong_rows]
        + ["best CPU", "1x A100", "2x A100", "4x V100"],
        [r.fpga for r in strong_rows]
        + [
            strong_rows[0].best_cpu,
            strong_rows[0].gpu_a100[1],
            strong_rows[0].gpu_a100[2],
            strong_rows[0].gpu_v100[4],
        ],
        unit=" us/day",
        title="Strong scaling at 4x4x4 (4096 particles)",
    )
    parts = [
        format_table(headers, rows_for(result.weak), title="Fig 16 (weak scaling) — us/day"),
        "",
        format_table(headers, rows_for(result.strong), title="Fig 16 (strong scaling, 4x4x4) — us/day"),
        "",
        format_table(headers, rows_for(result.simulated), title="Fig 16 (simulated scale-out) — us/day"),
        "",
        chart,
        "",
        f"strong-scaling gain C vs A: {result.strong_speedup_c_over_a:.2f}x (paper: 5.26x)",
        f"best FPGA vs best GPU:      {result.speedup_vs_best_gpu:.2f}x (paper: 4.67x)",
    ]
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Figure 17: utilization breakdown
# ---------------------------------------------------------------------------


@dataclass
class Fig17Row:
    """Utilization of the key components for one design variant."""

    name: str
    hardware: Dict[str, float]
    time: Dict[str, float]


@dataclass
class Fig17Result:
    rows: List[Fig17Row]


def run_fig17(seed: int = 2023) -> Fig17Result:
    """Reproduce Fig. 17: HW/time utilization of PR, FR, Filter, PE, MU."""
    configs = {**weak_scaling_configs(), **strong_scaling_configs()}
    rows = []
    for name, cfg in configs.items():
        perf = _measure(cfg, seed)
        rows.append(
            Fig17Row(
                name,
                {k: v.hardware for k, v in perf.utilization.items()},
                {k: v.time for k, v in perf.utilization.items()},
            )
        )
    return Fig17Result(rows)


def format_fig17(result: Fig17Result) -> str:
    comps = ["pr", "fr", "filter", "pe", "mu"]
    headers = ["config"] + [f"{c}.hw" for c in comps] + [f"{c}.time" for c in comps]
    rows = []
    for r in result.rows:
        rows.append(
            [r.name]
            + [100 * r.hardware[c] for c in comps]
            + [100 * r.time[c] for c in comps]
        )
    return format_table(
        headers, rows, precision=1,
        title="Fig 17 — component utilization (%)",
    )


# ---------------------------------------------------------------------------
# Figure 18: communication intensity
# ---------------------------------------------------------------------------


@dataclass
class Fig18Row:
    """Per-node average bandwidth demand for one design (Fig. 18(A))."""

    name: str
    position_gbps: float
    force_gbps: float
    iteration_us: float


@dataclass
class Fig18Result:
    rows: List[Fig18Row]
    #: Fig. 18(B): node 0's egress percentage per destination node,
    #: for the 4x4x4-C design, keyed by channel.
    breakdown: Dict[str, Dict[int, float]]
    #: Torus hop distance from node 0 to each destination.
    hop_distance: Dict[int, int]


def run_fig18(seed: int = 2023) -> Fig18Result:
    """Reproduce Fig. 18: bandwidth demand and per-neighbor breakdown."""
    configs = {
        "6x6x6": weak_scaling_configs()["6x6x6"],
        **strong_scaling_configs(),
    }
    rows = []
    breakdown: Dict[str, Dict[int, float]] = {}
    hops: Dict[int, int] = {}
    for name, cfg in configs.items():
        machine = FasdaMachine(cfg, seed=seed)
        stats = machine.measure_workload()
        perf = estimate_performance(cfg, stats)
        fabric = Fabric(
            cfg.n_fpgas,
            packet_bits=cfg.packet_bits,
            records_per_packet=cfg.records_per_packet,
            link_gbps=cfg.link_gbps,
        )
        stats.fill_fabric(fabric)
        t_iter = perf.seconds_per_step
        rows.append(
            Fig18Row(
                name,
                fabric.max_node_egress_gbps("position", t_iter),
                fabric.max_node_egress_gbps("force", t_iter),
                t_iter * 1e6,
            )
        )
        if name == "4x4x4-C":
            breakdown = {
                "position": fabric.breakdown_percent(0, "position"),
                "force": fabric.breakdown_percent(0, "force"),
            }
            torus = TorusTopology(cfg.fpga_grid)
            hops = {d: torus.hop_distance(0, d) for d in range(1, cfg.n_fpgas)}
    return Fig18Result(rows, breakdown, hops)


def format_fig18(result: Fig18Result) -> str:
    table_a = format_table(
        ["design", "pos Gbps", "frc Gbps", "iter us"],
        [[r.name, r.position_gbps, r.force_gbps, r.iteration_us] for r in result.rows],
        title="Fig 18(A) — per-node average bandwidth demand",
    )
    dests = sorted(result.hop_distance)
    rows_b = []
    for chan in ("position", "force"):
        rows_b.append(
            [chan] + [result.breakdown.get(chan, {}).get(d, 0.0) for d in dests]
        )
    table_b = format_table(
        ["channel"] + [f"node{d} (h{result.hop_distance[d]})" for d in dests],
        rows_b,
        precision=1,
        title="Fig 18(B) — node 0 egress breakdown (%), 4x4x4-C",
    )
    return table_a + "\n\n" + table_b


# ---------------------------------------------------------------------------
# Table 1: resource utilization
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    #: design -> resource -> (model %, paper %).
    rows: Dict[str, Dict[str, Tuple[float, float]]]


def run_table1() -> Table1Result:
    """Reproduce Table 1: per-FPGA resource utilization per design."""
    configs = {**weak_scaling_configs(), **strong_scaling_configs()}
    rows: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for name, cfg in configs.items():
        model = estimate_resources(cfg).utilization_percent()
        paper = PAPER_TABLE1[name]
        rows[name] = {res: (model[res], float(paper[res])) for res in model}
    return Table1Result(rows)


def format_table1(result: Table1Result) -> str:
    headers = ["design"] + [
        f"{res}.{src}" for res in ("lut", "ff", "bram", "uram", "dsp")
        for src in ("model", "paper")
    ]
    rows = []
    for name, res_map in result.rows.items():
        row: List = [name]
        for res in ("lut", "ff", "bram", "uram", "dsp"):
            m, p = res_map[res]
            row += [m, p]
        rows.append(row)
    return format_table(headers, rows, precision=0, title="Table 1 — resource utilization (%)")


# ---------------------------------------------------------------------------
# Figure 19: energy conservation
# ---------------------------------------------------------------------------


@dataclass
class Fig19Result:
    steps: np.ndarray
    machine_energy: np.ndarray
    reference_energy: np.ndarray

    @property
    def relative_error(self) -> np.ndarray:
        return np.abs(self.machine_energy - self.reference_energy) / np.abs(
            self.reference_energy
        )

    @property
    def max_relative_error(self) -> float:
        return float(self.relative_error.max())

    @property
    def median_relative_error(self) -> float:
        return float(np.median(self.relative_error))


def run_fig19(
    n_steps: int = 400,
    record_every: int = 20,
    dims: Tuple[int, int, int] = (4, 4, 4),
    seed: int = 2023,
) -> Fig19Result:
    """Reproduce Fig. 19: FASDA total energy vs. the float64 reference.

    The paper runs 100,000 iterations; the error settles within the
    first few hundred, so the default keeps the bench to ~a minute.
    Both engines start from identical state.
    """
    system, grid = build_dataset(dims, seed=seed)
    cfg = MachineConfig(dims, (1, 1, 1))
    machine = FasdaMachine(cfg, system=system.copy())
    reference = ReferenceEngine(system.copy(), grid, dt_fs=cfg.dt_fs)
    mrecs = machine.run(n_steps, record_every=record_every)
    rrecs = reference.run(n_steps, record_every=record_every)
    steps = np.array([r.step for r in rrecs])
    me = np.array([r.total for r in mrecs])
    re = np.array([r.total for r in rrecs])
    return Fig19Result(steps, me, re)


def format_fig19(result: Fig19Result) -> str:
    rows = [
        [int(s), m, r, e]
        for s, m, r, e in zip(
            result.steps,
            result.machine_energy,
            result.reference_energy,
            result.relative_error,
        )
    ]
    table = format_table(
        ["step", "FASDA E (kcal/mol)", "ref E (kcal/mol)", "rel err"],
        rows,
        precision=6,
        title="Fig 19 — energy relative error vs float64 reference",
    )
    tail = (
        f"\nmax rel err = {result.max_relative_error:.2e} (paper: < 1e-3); "
        f"median = {result.median_relative_error:.2e} (paper: generally < 1e-4)"
    )
    return table + tail

"""Experiment harness: one driver per paper table/figure.

Each ``run_*`` function returns a plain-data result object; each
``format_*`` renders it as the text table the corresponding benchmark
prints.  The mapping to the paper:

========== ==========================================================
fig16      Scalability comparison (weak, strong, simulated large)
fig17      Hardware/time utilization breakdown per design variant
fig18      Communication bandwidth demand and per-neighbor breakdown
table1     FPGA resource utilization per design variant
fig19      Energy relative error vs. the float64 reference
========== ==========================================================
"""

from repro.harness.acceptance import run_acceptance
from repro.harness.campaign import (
    check_regression,
    run_campaign,
    run_default_campaign,
)
from repro.harness.experiments import (
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_table1,
)
from repro.harness.report import format_bar_chart, format_csv, format_table
from repro.harness.sweeps import (
    run_fpga_scaling,
    run_imbalance_study,
    run_sensitivity,
    run_weak_scaling_extension,
)

__all__ = [
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "run_fig19",
    "run_table1",
    "run_acceptance",
    "run_campaign",
    "run_default_campaign",
    "check_regression",
    "run_fpga_scaling",
    "run_weak_scaling_extension",
    "run_imbalance_study",
    "run_sensitivity",
    "format_table",
    "format_csv",
    "format_bar_chart",
]

"""Ablation studies for the design choices the paper argues for.

Each ablation isolates one architectural decision and quantifies the
trade-off the paper describes qualitatively:

* **Synchronization** (Sec. 4.4): chained vs. switch-barrier BSP vs.
  host-coordinated BSP under straggler injection.
* **Filters per pipeline** (Sec. 5.3): the paper uses 6 filters to match
  the ~15.5% pair-acceptance rate; the sweep shows throughput saturating
  once the pipeline, not the filter bank, becomes the bottleneck.
* **Interpolation table size** (Sec. 3.4): accuracy vs. BRAM footprint.
* **Cell size** (Sec. 2.2, Fig. 3): cells smaller than R_c multiply the
  neighbor-cell count; larger cells dilute the valid-pair fraction.
* **Topology** (Sec. 4.1): hyper-ring vs. torus vs. switch on link
  count, diameter, and suitability for neighbor-dominated traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.arith.interp import InterpolationTable
from repro.core.config import MachineConfig
from repro.core.cycles import estimate_performance
from repro.core.machine import FasdaMachine
from repro.core.sync import (
    random_straggler_work,
    run_bulk_sync,
    run_chained_sync,
)
from repro.harness.report import format_table
from repro.network.topology import (
    HyperRingTopology,
    SwitchTopology,
    TorusTopology,
)

# ---------------------------------------------------------------------------
# Synchronization ablation
# ---------------------------------------------------------------------------


@dataclass
class SyncAblationRow:
    straggler_probability: float
    chained_cycles_per_iter: float
    bulk_cycles_per_iter: float
    host_cycles_per_iter: float

    @property
    def chained_vs_bulk(self) -> float:
        """Chained sync's speedup over switch-barrier BSP."""
        return self.bulk_cycles_per_iter / self.chained_cycles_per_iter


@dataclass
class SyncAblationResult:
    rows: List[SyncAblationRow]
    work_cycles: float
    n_iterations: int


def run_sync_ablation(
    probabilities: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
    work_cycles: float = 16_000.0,
    slowdown: float = 2.0,
    n_iterations: int = 20,
    link_latency: float = 200.0,
    seed: int = 0,
) -> SyncAblationResult:
    """Chained vs. BSP vs. host-BSP under random transient stragglers.

    ``work_cycles`` defaults to the measured force-phase length of the
    weak-scaling design points; the straggler slowdown models transient
    load imbalance (uneven valid-pair counts, paper Sec. 4.4).
    """
    topo = TorusTopology((2, 2, 2))
    rows = []
    for p in probabilities:
        work = random_straggler_work(work_cycles, slowdown, p, seed=seed)
        chained = run_chained_sync(
            topo, work, n_iterations, link_latency=link_latency
        )
        bulk = run_bulk_sync(
            topo.n_nodes, work, n_iterations, barrier_latency=link_latency
        )
        host = run_bulk_sync(
            topo.n_nodes, work, n_iterations, host_coordinated=True
        )
        rows.append(
            SyncAblationRow(
                p,
                chained.mean_iteration_time(),
                bulk.mean_iteration_time(),
                host.mean_iteration_time(),
            )
        )
    return SyncAblationResult(rows, work_cycles, n_iterations)


def format_sync_ablation(result: SyncAblationResult) -> str:
    rows = [
        [
            f"{r.straggler_probability:.0%}",
            r.chained_cycles_per_iter,
            r.bulk_cycles_per_iter,
            r.host_cycles_per_iter,
            r.chained_vs_bulk,
        ]
        for r in result.rows
    ]
    return format_table(
        ["straggle p", "chained", "BSP(switch)", "BSP(host)", "chained/BSP gain"],
        rows,
        precision=1,
        title="Sync ablation — cycles per iteration (8-node torus)",
    )


# ---------------------------------------------------------------------------
# Filters-per-pipeline sweep
# ---------------------------------------------------------------------------


@dataclass
class FilterSweepRow:
    filters: int
    rate_us_per_day: float
    filter_hw_utilization: float
    pe_hw_utilization: float
    bound: str


@dataclass
class FilterSweepResult:
    rows: List[FilterSweepRow]


def run_filter_sweep(
    filter_counts: Tuple[int, ...] = (2, 4, 6, 8, 12, 16),
    seed: int = 2023,
    parallel: bool = False,
) -> FilterSweepResult:
    """Sweep filters/pipeline on the 3x3x3 design point.

    The workload statistics do not depend on the filter count, so one
    machine measurement serves the whole sweep (cached per process).
    Dispatches through the campaign runner; ``parallel=True`` fans the
    filter counts out over processes with identical merged results.
    """
    from repro.harness.campaign import point, run_campaign

    pts = [
        point("filter_ablation", seed=seed, label=f"{f}-filters", filters=f)
        for f in filter_counts
    ]
    campaign = run_campaign(pts, parallel=parallel)
    rows = [
        FilterSweepRow(
            r["filters"],
            r["rate_us_per_day"],
            r["filter_hw_utilization"],
            r["pe_hw_utilization"],
            r["bound"],
        )
        for r in (p["result"] for p in campaign.results)
    ]
    return FilterSweepResult(rows)


def format_filter_sweep(result: FilterSweepResult) -> str:
    rows = [
        [r.filters, r.rate_us_per_day, 100 * r.filter_hw_utilization,
         100 * r.pe_hw_utilization, r.bound]
        for r in result.rows
    ]
    return format_table(
        ["filters/pipe", "us/day", "filter hw %", "pe hw %", "bound"],
        rows,
        precision=2,
        title="Filter-count ablation (3x3x3) — paper uses 6",
    )


# ---------------------------------------------------------------------------
# Interpolation table sweep
# ---------------------------------------------------------------------------


@dataclass
class InterpSweepRow:
    n_s: int
    n_b: int
    max_rel_error_r14: float
    max_rel_error_r8: float
    bram_words: int


@dataclass
class InterpSweepResult:
    rows: List[InterpSweepRow]


def run_interp_sweep(
    sizes: Tuple[Tuple[int, int], ...] = (
        (8, 16), (8, 64), (14, 64), (14, 256), (14, 1024), (20, 256)
    ),
) -> InterpSweepResult:
    """Interpolation accuracy vs. table footprint (paper Sec. 3.4)."""
    rows = []
    for n_s, n_b in sizes:
        t14 = InterpolationTable(14, n_s=n_s, n_b=n_b)
        t8 = InterpolationTable(8, n_s=n_s, n_b=n_b)
        rows.append(
            InterpSweepRow(
                n_s,
                n_b,
                t14.max_relative_error(),
                t8.max_relative_error(),
                t14.bram_words + t8.bram_words,
            )
        )
    return InterpSweepResult(rows)


def format_interp_sweep(result: InterpSweepResult) -> str:
    rows = [
        [f"{r.n_s}x{r.n_b}", f"{r.max_rel_error_r14:.2e}",
         f"{r.max_rel_error_r8:.2e}", r.bram_words]
        for r in result.rows
    ]
    return format_table(
        ["sections x bins", "max err r^-14", "max err r^-8", "coeff words"],
        rows,
        title="Interpolation-table ablation (Eq. 8-10)",
    )


# ---------------------------------------------------------------------------
# Cell size analysis (Fig. 3)
# ---------------------------------------------------------------------------


@dataclass
class CellSizeRow:
    size_ratio: float           # cell edge / R_c
    neighbor_cells: int         # cells to pair against (full shell)
    candidate_volume_ratio: float  # candidate volume / cutoff-sphere volume
    valid_fraction: float       # expected filter acceptance


@dataclass
class CellSizeResult:
    rows: List[CellSizeRow]


def run_cellsize_analysis(
    ratios: Tuple[float, ...] = (0.5, 2.0 / 3.0, 1.0, 1.5, 2.0),
) -> CellSizeResult:
    """Quantify Fig. 3: the cell-size trade-off around R_c.

    For cell edge ``a = s * R_c``, pairing must cover all cells within
    ``k = ceil(1/s)`` in each direction: ``(2k+1)**3 - 1`` neighbors.
    The candidate volume is ``((2k+1) * a)**3``; valid pairs fill a
    cutoff sphere of volume ``4/3 pi R_c^3`` (Eq. 3 generalized).
    """
    rows = []
    sphere = 4.0 / 3.0 * np.pi  # R_c = 1
    for s in ratios:
        k = int(np.ceil(1.0 / s - 1e-12))
        n_neighbors = (2 * k + 1) ** 3 - 1
        volume = ((2 * k + 1) * s) ** 3
        rows.append(
            CellSizeRow(
                size_ratio=s,
                neighbor_cells=n_neighbors,
                candidate_volume_ratio=volume / sphere,
                valid_fraction=sphere / volume,
            )
        )
    return CellSizeResult(rows)


def format_cellsize(result: CellSizeResult) -> str:
    rows = [
        [f"{r.size_ratio:.2f}", r.neighbor_cells,
         r.candidate_volume_ratio, 100 * r.valid_fraction]
        for r in result.rows
    ]
    return format_table(
        ["cell/R_c", "neighbor cells", "volume overhead", "valid pairs %"],
        rows,
        precision=2,
        title="Cell-size ablation (Fig. 3; Eq. 3 gives 15.5% at ratio 1)",
    )


# ---------------------------------------------------------------------------
# Inter-FPGA latency sweep — the "tight coupling" thesis quantified
# ---------------------------------------------------------------------------


@dataclass
class LatencyRow:
    latency_cycles: int
    latency_us: float
    rate_us_per_day: float
    sync_share: float  # fraction of the iteration spent in the handshake


@dataclass
class LatencySweepResult:
    rows: List[LatencyRow]

    @property
    def tight_vs_loose(self) -> float:
        """Rate ratio between the tightest and loosest coupling."""
        return self.rows[0].rate_us_per_day / self.rows[-1].rate_us_per_day


def run_latency_sweep(
    latencies_cycles: Tuple[int, ...] = (20, 200, 2_000, 20_000, 200_000),
    seed: int = 2023,
) -> LatencySweepResult:
    """Strong-scaling rate vs inter-FPGA latency (4x4x4-C, 8 nodes).

    The paper's core thesis is that FPGAs couple computation and
    communication tightly — "data transfers, application level to
    application level, take only a few cycles beyond time-of-flight" —
    and that this is what makes strong scaling possible.  This sweep
    prices the alternative: the same design point behind fabrics with
    switch-level (~1 us), datacenter-network (~10-100 us), and
    host-mediated (~1 ms) latencies.  At MD iteration times of tens of
    microseconds, loose coupling erases the accelerator's advantage.
    """
    import dataclasses

    from repro.core.config import strong_scaling_configs

    base = strong_scaling_configs()["4x4x4-C"]
    machine = FasdaMachine(base, seed=seed)
    stats = machine.measure_workload()
    rows = []
    for lat in latencies_cycles:
        cfg = dataclasses.replace(base, inter_fpga_latency_cycles=lat)
        perf = estimate_performance(cfg, stats)
        rows.append(
            LatencyRow(
                latency_cycles=lat,
                latency_us=lat * cfg.cycle_seconds * 1e6,
                rate_us_per_day=perf.rate_us_per_day,
                sync_share=perf.sync_cycles / perf.iteration_cycles,
            )
        )
    return LatencySweepResult(rows)


def format_latency_sweep(result: LatencySweepResult) -> str:
    rows = [
        [f"{r.latency_us:g} us", r.latency_cycles, r.rate_us_per_day,
         f"{100 * r.sync_share:.0f}%"]
        for r in result.rows
    ]
    table = format_table(
        ["one-way latency", "cycles", "us/day", "sync share"],
        rows,
        precision=2,
        title="Inter-FPGA latency sweep (4x4x4-C) — why tight coupling matters",
    )
    return table + (
        f"\ntight (switch) vs loose (host-mediated) coupling: "
        f"{result.tight_vs_loose:.1f}x"
    )


# ---------------------------------------------------------------------------
# Cooldown / packet-loss ablation (Sec. 5.4)
# ---------------------------------------------------------------------------


@dataclass
class CooldownRow:
    cooldown_cycles: int
    loss_rate: float
    peak_buffer_occupancy: int
    peak_gbps: float


@dataclass
class CooldownResult:
    rows: List[CooldownRow]
    n_senders: int
    packets_per_sender: int
    buffer_packets: int


def run_cooldown_ablation(
    cooldowns: Tuple[int, ...] = (1, 2, 4, 8, 16),
    n_senders: int = 7,
    packets_per_sender: int = 200,
    buffer_packets: int = 64,
    clock_hz: float = 200e6,
    packet_bits: int = 512,
) -> CooldownResult:
    """Sweep the transmit cooldown on a synchronized 7-to-1 incast.

    The scenario: all seven neighbors start their position exchange
    toward one node simultaneously — the peak the paper spreads out
    with cooldown counters.  Reports loss rate (switch buffer tail
    drop), peak buffer occupancy, and the per-sender instantaneous rate.
    """
    from repro.network.netsim import incast_loss_rate

    rows = []
    for c in cooldowns:
        loss, peak = incast_loss_rate(
            n_senders=n_senders,
            packets_per_sender=packets_per_sender,
            cooldown_cycles=c,
            buffer_packets=buffer_packets,
        )
        peak_gbps = clock_hz / c * packet_bits / 1e9
        rows.append(CooldownRow(c, loss, peak, peak_gbps))
    return CooldownResult(rows, n_senders, packets_per_sender, buffer_packets)


def format_cooldown(result: CooldownResult) -> str:
    rows = [
        [r.cooldown_cycles, f"{100 * r.loss_rate:.1f}%",
         r.peak_buffer_occupancy, r.peak_gbps]
        for r in result.rows
    ]
    return format_table(
        ["cooldown (cyc)", "packet loss", "peak buffer", "sender peak Gbps"],
        rows,
        precision=1,
        title=(
            f"Cooldown ablation — {result.n_senders}-to-1 incast, "
            f"{result.buffer_packets}-packet port buffer (Sec. 5.4)"
        ),
    )


# ---------------------------------------------------------------------------
# Position precision sweep
# ---------------------------------------------------------------------------


@dataclass
class PrecisionRow:
    frac_bits: int
    position_lsb_angstrom: float
    max_energy_rel_error: float


@dataclass
class PrecisionSweepResult:
    rows: List[PrecisionRow]


def run_precision_sweep(
    frac_bits: Tuple[int, ...] = (6, 10, 14, 23),
    n_steps: int = 30,
    dims: Tuple[int, int, int] = (3, 3, 3),
    particles_per_cell: int = 16,
    seed: int = 2023,
) -> PrecisionSweepResult:
    """Fixed-point fraction width vs. energy fidelity (paper Sec. 4.2).

    The paper motivates fixed-point positions by filter cost; this sweep
    quantifies the fidelity side: how many fraction bits the position
    format needs before quantization stops mattering relative to the
    float32 datapath (Fig. 19's regime).
    """
    from repro.md import ReferenceEngine, build_dataset

    system, grid = build_dataset(
        dims, particles_per_cell=particles_per_cell, seed=seed
    )
    reference = ReferenceEngine(system.copy(), grid, dt_fs=2.0)
    ref_records = reference.run(n_steps, record_every=max(1, n_steps // 6))
    rows = []
    for bits in frac_bits:
        cfg = MachineConfig(dims, frac_bits=bits)
        machine = FasdaMachine(cfg, system=system.copy())
        mac_records = machine.run(n_steps, record_every=max(1, n_steps // 6))
        err = max(
            abs(m.total - r.total) / abs(r.total)
            for m, r in zip(mac_records, ref_records)
        )
        rows.append(
            PrecisionRow(
                frac_bits=bits,
                position_lsb_angstrom=cfg.cutoff * 2.0 ** -bits,
                max_energy_rel_error=err,
            )
        )
    return PrecisionSweepResult(rows)


def format_precision_sweep(result: PrecisionSweepResult) -> str:
    rows = [
        [r.frac_bits, f"{r.position_lsb_angstrom:.2e}",
         f"{r.max_energy_rel_error:.2e}"]
        for r in result.rows
    ]
    return format_table(
        ["frac bits", "position LSB (A)", "max energy rel err"],
        rows,
        title="Position-precision ablation (fixed-point width)",
    )


# ---------------------------------------------------------------------------
# Topology comparison
# ---------------------------------------------------------------------------


@dataclass
class TopologyRow:
    name: str
    n_nodes: int
    links: int
    diameter: int
    avg_distance: float
    neighbor_avg_distance: float  # mean hops between torus-adjacent nodes


@dataclass
class TopologyResult:
    rows: List[TopologyRow]


def run_topology_comparison(fpga_grid: Tuple[int, int, int] = (2, 2, 2)) -> TopologyResult:
    """Compare fabrics for one FPGA grid under FASDA's traffic pattern.

    The figure of merit is the hop distance between *spatially adjacent*
    nodes — the only pairs that exchange significant traffic (Fig. 18(B))
    — rather than all-pairs distance, which is where hyper-rings are
    weak but FASDA doesn't care.
    """
    torus = TorusTopology(fpga_grid)
    n = torus.n_nodes
    # Spatially adjacent node pairs (face neighbors in the torus).
    adjacent = torus.links()
    candidates = {
        "torus(direct)": torus,
        "switch(star)": SwitchTopology(n),
        "hyper-ring(o2)": HyperRingTopology(
            group_size=max(2, fpga_grid[2] * fpga_grid[1]),
            n_groups=max(2, fpga_grid[0]),
            order=2,
        ),
        "ring(o1)": HyperRingTopology(group_size=n, order=1),
    }
    rows = []
    for name, topo in candidates.items():
        nbr_dist = float(
            np.mean([topo.hop_distance(a, b) for a, b in adjacent])
        )
        rows.append(
            TopologyRow(
                name,
                topo.n_nodes,
                len(topo.links()),
                topo.diameter(),
                topo.average_distance(),
                nbr_dist,
            )
        )
    return TopologyResult(rows)


def format_topology(result: TopologyResult) -> str:
    rows = [
        [r.name, r.n_nodes, r.links, r.diameter, r.avg_distance,
         r.neighbor_avg_distance]
        for r in result.rows
    ]
    return format_table(
        ["fabric", "nodes", "links", "diam", "avg dist", "nbr dist"],
        rows,
        precision=2,
        title="Topology ablation (Sec. 4.1) — neighbor traffic dominates",
    )

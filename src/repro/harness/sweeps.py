"""Design-space sweeps: FPGA-count scaling and model sensitivity.

The headline abstract claim — "demonstrates nearly linear scaling on an
eight FPGA cluster" — is about what more FPGAs buy for a *fixed* small
problem.  The mechanism is indirect: one FPGA hosting all 64 cells of
the 4x4x4 space has no room for extra PEs, while eight FPGAs hosting 8
cells each can afford 6 PEs per cell.  :func:`run_fpga_scaling` makes
that explicit: at each node count it picks the strongest PE/SPE
organization that still fits the U280 (with a routability margin) and
reports the resulting rate.

:func:`run_sensitivity` quantifies how the two calibrated
microarchitectural efficiency constants propagate into the headline
numbers — the honesty check EXPERIMENTS.md cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.cycles import estimate_performance
from repro.core.machine import FasdaMachine
from repro.core.resources import estimate_resources
from repro.harness.report import format_table
from repro.util.errors import ValidationError

#: PE/SPE organizations considered by the auto-fitter, strongest first.
_ORGANIZATIONS: Tuple[Tuple[int, int], ...] = (
    (4, 2), (3, 2), (2, 2), (4, 1), (3, 1), (2, 1), (1, 1)
)


def _divisor_grids(global_cells: Tuple[int, int, int], n_fpgas: int):
    """All fpga_grid tuples with the given node count that divide the
    space evenly, preferring cubic-ish decompositions."""
    gx, gy, gz = global_cells
    grids = []
    for fx in range(1, gx + 1):
        if gx % fx:
            continue
        for fy in range(1, gy + 1):
            if gy % fy:
                continue
            if n_fpgas % (fx * fy):
                continue
            fz = n_fpgas // (fx * fy)
            if fz < 1 or gz % fz:
                continue
            grids.append((fx, fy, fz))
    # Prefer balanced decompositions (min surface).
    grids.sort(key=lambda g: max(g) - min(g))
    return grids


def best_fitting_config(
    global_cells: Tuple[int, int, int],
    n_fpgas: int,
    margin: float = 0.9,
) -> Optional[MachineConfig]:
    """Strongest design point for a node count that fits the device.

    Returns None when no decomposition of the space over ``n_fpgas``
    exists or nothing fits.
    """
    for grid in _divisor_grids(global_cells, n_fpgas):
        for pes, spes in _ORGANIZATIONS:
            cfg = MachineConfig(
                global_cells, grid, pes_per_spe=pes, spes_per_cbb=spes
            )
            if estimate_resources(cfg).fits(margin=margin):
                return cfg
    return None


@dataclass
class ScalingRow:
    n_fpgas: int
    config: MachineConfig
    rate_us_per_day: float
    speedup: float
    efficiency: float  # speedup / node-count ratio


@dataclass
class ScalingResult:
    global_cells: Tuple[int, int, int]
    rows: List[ScalingRow]


def run_fpga_scaling(
    global_cells: Tuple[int, int, int] = (4, 4, 4),
    node_counts: Tuple[int, ...] = (1, 2, 4, 8),
    margin: float = 0.9,
    seed: int = 2023,
    parallel: bool = False,
) -> ScalingResult:
    """Rate vs. FPGA count with resource-constrained auto-organization.

    Each node count is an independent, seeded design point, so the
    sweep dispatches through the campaign runner; ``parallel=True``
    fans the points out over a process pool with results identical to
    the serial order (see :mod:`repro.harness.campaign`).
    """
    from repro.harness.campaign import point, run_campaign

    pts = [
        point(
            "fpga_scaling",
            seed=seed,
            label=f"{n}-fpga",
            global_cells=tuple(global_cells),
            n_fpgas=n,
            margin=margin,
        )
        for n in node_counts
    ]
    campaign = run_campaign(pts, parallel=parallel)
    rows: List[ScalingRow] = []
    base_rate = None
    base_nodes = None
    for payload in campaign.results:
        r = payload["result"]
        if not r["fits"]:
            continue
        n = r["n_fpgas"]
        # The config is cheap and deterministic to recover here; the
        # worker payload stays JSON-able scalars.
        cfg = best_fitting_config(global_cells, n, margin=margin)
        rate = r["rate_us_per_day"]
        if base_rate is None:
            base_rate, base_nodes = rate, n
        speedup = rate / base_rate
        rows.append(
            ScalingRow(
                n_fpgas=n,
                config=cfg,
                rate_us_per_day=rate,
                speedup=speedup,
                efficiency=speedup / (n / base_nodes),
            )
        )
    if not rows:
        raise ValidationError("no node count produced a fitting design")
    return ScalingResult(tuple(global_cells), rows)


def format_fpga_scaling(result: ScalingResult) -> str:
    rows = [
        [
            r.n_fpgas,
            f"{r.config.spes_per_cbb}-SPE {r.config.pes_per_spe}-PE",
            r.config.pes_per_cbb,
            r.rate_us_per_day,
            r.speedup,
            r.efficiency,
        ]
        for r in result.rows
    ]
    gc = result.global_cells
    return format_table(
        ["FPGAs", "organization", "PEs/cell", "us/day", "speedup", "efficiency"],
        rows,
        precision=2,
        title=(
            f"FPGA scaling, {gc[0]}x{gc[1]}x{gc[2]} cells — strongest "
            "organization fitting the U280 per node count"
        ),
    )


# ---------------------------------------------------------------------------
# Load-imbalance study (beyond the paper's uniform benchmark)
# ---------------------------------------------------------------------------


@dataclass
class ImbalanceResult:
    """Cost of a non-uniform density on a spatially-decomposed cluster."""

    gradient_rate: float
    balanced_rate_bound: float   # if the same work were spread evenly
    node_spread: float           # max/min per-node force cycles
    imbalance_penalty: float     # 1 - balanced_iteration / actual_iteration
    sync_overhead: float         # event-sim vs analytic iteration time


def run_imbalance_study(seed: int = 2023) -> ImbalanceResult:
    """Quantify what a non-uniform density costs the cluster.

    The paper's benchmark gives every node identical work; a density
    gradient (16 -> 64 particles/cell across x) makes the high-density
    nodes permanent stragglers.  The cluster runs at the slowest node's
    pace, so the gap between the mean and the max per-node force phase
    is pure waste — the cost spatial decomposition pays on real systems.
    The chained-sync event simulation confirms the protocol itself adds
    nothing on top (steady state is straggler-bound either way, Sec. 4.4).
    """
    from repro.core.clustersim import simulate_cluster
    from repro.md.dataset import build_gradient_dataset

    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    system, _ = build_gradient_dataset((4, 4, 4), seed=seed)
    gradient = FasdaMachine(cfg, system=system)
    stats = gradient.measure_workload()
    perf = estimate_performance(cfg, stats)
    trace = simulate_cluster(cfg, stats, n_iterations=6)

    cyc = perf.per_node_force_cycles
    actual_iter = perf.iteration_cycles
    balanced_iter = float(cyc.mean()) + perf.sync_cycles + perf.mu_cycles
    return ImbalanceResult(
        gradient_rate=perf.rate_us_per_day,
        balanced_rate_bound=perf.rate_us_per_day * actual_iter / balanced_iter,
        node_spread=float(cyc.max() / max(cyc.min(), 1.0)),
        imbalance_penalty=1.0 - balanced_iter / actual_iter,
        sync_overhead=trace.agreement,
    )


def format_imbalance(result: ImbalanceResult) -> str:
    rows = [
        ["achieved (straggler-bound)", result.gradient_rate],
        ["balanced redistribution bound", result.balanced_rate_bound],
    ]
    table = format_table(
        ["throughput", "us/day"],
        rows,
        precision=2,
        title="Load-imbalance study: 16->64 particles/cell gradient, 8 FPGAs",
    )
    return table + (
        f"\nper-node force-cycle spread (max/min): {result.node_spread:.2f}"
        f"\nthroughput lost to imbalance: {100 * result.imbalance_penalty:.1f}%"
        f"\nchained-sync overhead beyond the slowest node: "
        f"{100 * (result.sync_overhead - 1):.1f}%"
    )


# ---------------------------------------------------------------------------
# Weak-scaling extension beyond the paper's 8 boards
# ---------------------------------------------------------------------------


@dataclass
class WeakScalingRow:
    n_fpgas: int
    global_cells: Tuple[int, int, int]
    n_particles: int
    rate_us_per_day: float


@dataclass
class WeakScalingResult:
    rows: List[WeakScalingRow]

    @property
    def flatness(self) -> float:
        """Max over min rate — 1.0 is perfect weak scaling."""
        rates = [r.rate_us_per_day for r in self.rows]
        return max(rates) / min(rates)


def run_weak_scaling_extension(
    multipliers: Tuple[Tuple[int, int, int], ...] = (
        (1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2), (3, 3, 1), (3, 3, 3)
    ),
    seed: int = 2023,
) -> WeakScalingResult:
    """Weak scaling past the paper's 8-board cluster (to 27 FPGAs).

    Keeps the paper's 3x3x3-cells-per-FPGA node design and grows the
    space; the paper measures up to 8 boards and argues the behavior
    extends (fixed per-node workload, neighbor-only latency).  This
    sweep runs the model out to 27 boards to check nothing in the
    traffic or ring accounting breaks the flatness.
    """
    rows = []
    for mult in multipliers:
        global_cells = tuple(3 * m for m in mult)
        cfg = MachineConfig(global_cells, mult)
        machine = FasdaMachine(cfg, seed=seed)
        perf = estimate_performance(cfg, machine.measure_workload())
        rows.append(
            WeakScalingRow(
                n_fpgas=cfg.n_fpgas,
                global_cells=global_cells,
                n_particles=cfg.n_cells * 64,
                rate_us_per_day=perf.rate_us_per_day,
            )
        )
    return WeakScalingResult(rows)


def format_weak_scaling_extension(result: WeakScalingResult) -> str:
    rows = [
        [
            r.n_fpgas,
            "x".join(map(str, r.global_cells)),
            r.n_particles,
            r.rate_us_per_day,
        ]
        for r in result.rows
    ]
    table = format_table(
        ["FPGAs", "cells", "particles", "us/day"],
        rows,
        precision=2,
        title="Weak scaling extension (3x3x3 cells per FPGA, out to 27 boards)",
    )
    return table + f"\nflatness (max/min rate): {result.flatness:.3f}"


# ---------------------------------------------------------------------------
# Model-constant sensitivity
# ---------------------------------------------------------------------------


@dataclass
class SensitivityRow:
    filter_efficiency: float
    busy_fraction: float
    rate_3x3x3: float
    strong_gain_c_over_a: float


@dataclass
class SensitivityResult:
    rows: List[SensitivityRow]


def run_sensitivity(
    perturbations: Tuple[float, ...] = (0.9, 1.0, 1.1),
    seed: int = 2023,
    parallel: bool = False,
) -> SensitivityResult:
    """Perturb the two calibrated efficiency constants by +-10%.

    Absolute rates scale ~linearly with both constants; the *ratios*
    (weak-scaling flatness, the C-over-A gain) barely move, which is why
    the reproduction's comparative claims are robust to the calibration.
    Each (pf, pb) pair runs as one campaign point; the workload stats
    they share are cached per process, so the serial path still
    measures the machine once for the whole grid.
    """
    from repro.harness.campaign import point, run_campaign

    pts = [
        point(
            "sensitivity",
            seed=seed,
            label=f"pf={pf}/pb={pb}",
            pf=pf,
            pb=pb,
        )
        for pf in perturbations
        for pb in perturbations
    ]
    campaign = run_campaign(pts, parallel=parallel)
    rows = [
        SensitivityRow(
            r["filter_efficiency"],
            r["busy_fraction"],
            r["rate_3x3x3_us_per_day"],
            r["strong_gain_c_over_a"],
        )
        for r in (p["result"] for p in campaign.results)
    ]
    return SensitivityResult(rows)


def format_sensitivity(result: SensitivityResult) -> str:
    rows = [
        [f"{r.filter_efficiency:.2f}", f"{r.busy_fraction:.2f}",
         r.rate_3x3x3, r.strong_gain_c_over_a]
        for r in result.rows
    ]
    return format_table(
        ["filter eff", "busy frac", "3x3x3 us/day", "C/A gain"],
        rows,
        precision=2,
        title="Cycle-model sensitivity to the calibrated efficiencies",
    )

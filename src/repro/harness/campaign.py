"""Parallel campaign runner: process-pool fan-out over design points.

Sweeps and ablations are embarrassingly parallel — each design point is
an independent, seeded computation — yet until this module every harness
loop ran them one after another.  :func:`run_campaign` takes an ordered
list of :class:`CampaignPoint` descriptors, evaluates them either inline
or on a :class:`~concurrent.futures.ProcessPoolExecutor`, and returns
the per-point payloads **in submission order** regardless of completion
order.

Determinism contract
--------------------
A campaign's merged result is a pure function of its points:

* every worker is a module-level function registered by name (pickle
  travels by reference, so serial and parallel modes execute the exact
  same code object);
* every point carries its own seed, and the runner reseeds NumPy's
  legacy global RNG before each evaluation, so a worker sees the same
  random state whether it runs first in the parent or alone in a child;
* payloads are collected by submission index, never by completion order.

Consequently ``run_campaign(points, parallel=True).deterministic()``
equals ``run_campaign(points, parallel=False).deterministic()`` bit for
bit — the property ``tests/test_campaign.py`` locks down.  Wall-clock
derived metrics (measured steps/s) live under each payload's reserved
``result["timing"]`` key, which the deterministic view strips, so
timing noise can never break the contract.

Crash resumability
------------------
With ``journal=``, every completed point is appended (one fsynced JSONL
line) the moment it lands; with ``resume=`` pointing at such a journal,
a re-run adopts the recorded payloads instead of re-executing — matched
by :func:`point_fingerprint`, so only identical computations replay.
Combined with per-point ``retries`` (which survive even SIGKILLed pool
children), a campaign killed at any instant resumes to the same
deterministic result with no point executed twice.

:func:`check_regression` is the perf gate used by CI: it compares rate
metrics (``*_per_s``, ``*_us_per_day``) between a committed baseline
``BENCH_campaign.json`` and a fresh run and reports any that regressed
beyond a threshold.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import CampaignError, ValidationError

# ---------------------------------------------------------------------------
# Worker registry and point descriptors
# ---------------------------------------------------------------------------

_WORKERS: Dict[str, Callable[..., Dict[str, Any]]] = {}


def register_worker(name: str):
    """Register a module-level campaign worker under ``name``.

    Workers must be importable (module level) so child processes can
    resolve them; they take ``seed`` plus keyword parameters and return
    a JSON-able dict.
    """

    def deco(fn):
        if name in _WORKERS:
            raise ValidationError(f"duplicate campaign worker {name!r}")
        _WORKERS[name] = fn
        return fn

    return deco


def worker_names() -> List[str]:
    """Registered worker names (sorted)."""
    return sorted(_WORKERS)


@dataclass(frozen=True)
class CampaignPoint:
    """One design point: a worker name, its parameters, and a seed."""

    worker: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 2023
    label: str = ""


def point(worker: str, seed: int = 2023, label: str = "", **params) -> CampaignPoint:
    """Convenience constructor with params normalized to a sorted tuple."""
    return CampaignPoint(
        worker, tuple(sorted(params.items())), seed, label or worker
    )


def _execute(pt: CampaignPoint) -> Tuple[Dict[str, Any], float]:
    """Evaluate one point; returns (deterministic payload, wall seconds)."""
    fn = _WORKERS.get(pt.worker)
    if fn is None:
        raise ValidationError(
            f"unknown campaign worker {pt.worker!r}; have {worker_names()}"
        )
    np.random.seed(pt.seed % (2 ** 32))
    t0 = time.perf_counter()
    out = fn(seed=pt.seed, **dict(pt.params))
    wall = time.perf_counter() - t0
    payload = {
        "label": pt.label or pt.worker,
        "worker": pt.worker,
        "seed": pt.seed,
        "params": {k: v for k, v in pt.params},
        "result": out,
    }
    return payload, wall


# ---------------------------------------------------------------------------
# The completion journal (crash-resumable campaigns)
# ---------------------------------------------------------------------------


def point_fingerprint(pt: CampaignPoint) -> str:
    """Canonical identity of a design point for journal matching.

    Sorted-keys JSON over everything that determines the payload (the
    worker, its parameters, the seed, the label) — so a journal entry is
    only ever replayed against the *same* computation, and editing a
    sweep invalidates exactly the points that changed.
    """
    return json.dumps(
        {
            "worker": pt.worker,
            "seed": pt.seed,
            "label": pt.label or pt.worker,
            "params": [[k, v] for k, v in pt.params],
        },
        sort_keys=True,
    )


def load_journal(path: str) -> Dict[str, Dict[str, Any]]:
    """Parse a campaign journal into fingerprint -> entry.

    Tolerates a torn final line (the writer may have been killed
    mid-append); later entries for the same fingerprint win.
    """
    entries: Dict[str, Dict[str, Any]] = {}
    if not os.path.exists(path):
        return entries
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if isinstance(entry, dict) and "key" in entry and "payload" in entry:
                entries[entry["key"]] = entry
    return entries


class _Journal:
    """Append-only JSONL of completed points, durable per line."""

    def __init__(self, path: str):
        dirname = os.path.dirname(path)
        if dirname:
            os.makedirs(dirname, exist_ok=True)
        self.path = path
        self._fh = open(path, "a")

    def append(self, key: str, payload: Dict[str, Any], wall: float) -> None:
        self._fh.write(
            json.dumps(
                {"key": key, "label": payload["label"], "payload": payload,
                 "wall_s": wall},
                sort_keys=True,
            )
            + "\n"
        )
        # One completed point survives any subsequent crash: flush the
        # line and push it to disk before reporting success.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class CampaignResult:
    """Per-point payloads in submission order plus timing metadata."""

    points: List[CampaignPoint]
    results: List[Dict[str, Any]]
    point_wall_s: List[float]
    wall_s: float
    mode: str
    n_workers: int
    #: Points satisfied from a resume journal instead of executed.
    n_resumed: int = 0

    def merged(self) -> Dict[str, Dict[str, Any]]:
        """Label -> payload, including measured-timing metrics."""
        return {p["label"]: p for p in self.results}

    def deterministic(self) -> Dict[str, Dict[str, Any]]:
        """Label -> payload with wall-clock metrics stripped.

        This is the view the serial==parallel identity holds over; the
        reserved ``result["timing"]`` subdict is the only part of a
        payload allowed to vary between runs.
        """
        out = {}
        for p in self.results:
            res = {k: v for k, v in p["result"].items() if k != "timing"}
            out[p["label"]] = {**p, "result": res}
        return out


def _execute_with_retry(
    pt: CampaignPoint, retries: int, retry_backoff_s: float
) -> Tuple[Dict[str, Any], float]:
    """Serial-path execution with exponential-backoff retries."""
    attempt = 0
    while True:
        try:
            return _execute(pt)
        except Exception as exc:
            if attempt >= retries:
                raise CampaignError(
                    f"campaign point {pt.label or pt.worker!r} failed after "
                    f"{attempt + 1} attempt(s): {type(exc).__name__}: {exc}"
                )
            time.sleep(retry_backoff_s * (2 ** attempt))
            attempt += 1


def _pool_context():
    """Prefer fork so test-registered workers exist in children."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-POSIX


def _run_parallel(
    points: List[CampaignPoint],
    pending: List[int],
    pairs: List[Optional[Tuple[Dict[str, Any], float]]],
    journal: Optional[_Journal],
    keys: List[str],
    n_workers: int,
    retries: int,
    retry_backoff_s: float,
) -> None:
    """Fan ``pending`` out over a process pool, surviving worker death.

    A SIGKILLed child takes the whole :class:`ProcessPoolExecutor` down
    (every in-flight future raises :class:`BrokenProcessPool`), so the
    retry unit is the pool: unfinished points are resubmitted on a fresh
    pool after a backoff, each point charged one attempt per broken
    round it was in flight for, until its retry budget runs out.
    Completions are journaled as they land, never re-executed.
    """
    attempts = {i: 0 for i in pending}
    todo = list(pending)
    while todo:
        ctx = _pool_context()
        broken = False
        failures: Dict[int, str] = {}
        with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
            futures = {pool.submit(_execute, points[i]): i for i in todo}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in done:
                    i = futures[fut]
                    try:
                        payload, w = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as exc:  # worker raised, pool survives
                        failures[i] = f"{type(exc).__name__}: {exc}"
                        continue
                    pairs[i] = (payload, w)
                    if journal is not None:
                        journal.append(keys[i], payload, w)
                if broken:
                    break
        todo = [i for i in todo if pairs[i] is None]
        for i in todo:
            attempts[i] += 1
            if attempts[i] > retries:
                pt = points[i]
                reason = failures.get(i, "worker process died")
                raise CampaignError(
                    f"campaign point {pt.label or pt.worker!r} failed after "
                    f"{attempts[i]} attempt(s): {reason}"
                )
        if todo:
            time.sleep(retry_backoff_s * (2 ** (min(attempts[i] for i in todo) - 1)))


def run_campaign(
    points: Sequence[CampaignPoint],
    parallel: bool = False,
    max_workers: Optional[int] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
) -> CampaignResult:
    """Evaluate every point, inline or fanned out over processes.

    Results are returned in submission order in both modes, so the
    merged payloads are identical; only the timing fields differ.

    Parameters
    ----------
    journal:
        Path of an append-only JSONL journal; every completed point is
        written (flushed and fsynced) the moment it finishes, so a
        killed campaign leaves a durable record of exactly what is done.
    resume:
        Path of a journal from an earlier (killed) run of the *same*
        campaign; journaled points are adopted verbatim instead of
        re-executed (matched by :func:`point_fingerprint`, so edited
        points re-run).  ``resume`` and ``journal`` may name the same
        file — resumed entries are not re-appended.
    retries:
        Extra attempts per point after a failure (a raising worker, or
        a killed child process in parallel mode).  ``0`` fails fast.
    retry_backoff_s:
        Base of the exponential backoff between attempts.

    Serial, parallel, and killed-then-resumed runs of the same points
    all yield identical :meth:`CampaignResult.deterministic` views.
    """
    points = list(points)
    labels = [p.label or p.worker for p in points]
    if len(set(labels)) != len(labels):
        dupes = sorted({l for l in labels if labels.count(l) > 1})
        raise ValidationError(f"campaign labels must be unique, duplicated: {dupes}")
    for p in points:
        if p.worker not in _WORKERS:
            raise ValidationError(
                f"unknown campaign worker {p.worker!r}; have {worker_names()}"
            )
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")

    keys = [point_fingerprint(p) for p in points]
    pairs: List[Optional[Tuple[Dict[str, Any], float]]] = [None] * len(points)
    n_resumed = 0
    if resume:
        journaled = load_journal(resume)
        for i, key in enumerate(keys):
            entry = journaled.get(key)
            if entry is not None:
                pairs[i] = (entry["payload"], float(entry["wall_s"]))
                n_resumed += 1
    pending = [i for i, pr in enumerate(pairs) if pr is None]

    jnl = None
    if journal:
        jnl = _Journal(journal)
        if resume and os.path.abspath(resume) != os.path.abspath(journal):
            # Carry adopted completions into the new journal so it is
            # a self-contained record of the whole campaign.
            for i in range(len(points)):
                if pairs[i] is not None:
                    jnl.append(keys[i], pairs[i][0], pairs[i][1])

    # Resolve the worker count before choosing a mode: spinning up a
    # process pool for one worker only adds pickling overhead (the
    # committed BENCH_campaign.json records parallel_speedup 0.956 on a
    # 1-core host), so workers == 1 takes the serial path — journal
    # appends and resume fingerprints are identical either way.
    n_workers = max_workers or os.cpu_count() or 1
    n_workers = max(1, min(n_workers, max(1, len(pending))))
    t0 = time.perf_counter()
    try:
        if not parallel or len(pending) <= 1 or n_workers <= 1:
            for i in pending:
                payload, w = _execute_with_retry(
                    points[i], retries, retry_backoff_s
                )
                pairs[i] = (payload, w)
                if jnl is not None:
                    jnl.append(keys[i], payload, w)
            mode, n_workers = "serial", 1
        else:
            _run_parallel(
                points, pending, pairs, jnl, keys,
                n_workers, retries, retry_backoff_s,
            )
            mode = "parallel"
    finally:
        if jnl is not None:
            jnl.close()
    wall = time.perf_counter() - t0
    return CampaignResult(
        points=points,
        results=[p for p, _ in pairs],
        point_wall_s=[w for _, w in pairs],
        wall_s=wall,
        mode=mode,
        n_workers=n_workers,
        n_resumed=n_resumed,
    )


# ---------------------------------------------------------------------------
# Perf-regression gate
# ---------------------------------------------------------------------------

#: Payload keys treated as higher-is-better rates by the gate.
RATE_SUFFIXES: Tuple[str, ...] = ("_per_s", "_us_per_day")


def _rate_metrics(result: Dict[str, Any]) -> Dict[str, float]:
    out = {}
    candidates = dict(result)
    candidates.update(result.get("timing", {}))
    for k, v in candidates.items():
        if isinstance(v, (int, float)) and any(
            k.endswith(suf) for suf in RATE_SUFFIXES
        ):
            out[k] = float(v)
    return out


def check_regression(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    threshold: float = 0.30,
) -> List[str]:
    """Compare rate metrics between two BENCH_campaign payload maps.

    Both arguments are ``merged()``-style maps (or full BENCH_campaign
    documents with a ``"points"`` key holding one).  Returns a list of
    human-readable failure strings — empty means the gate passes.  A
    fresh rate below ``(1 - threshold) * baseline`` is a regression;
    points or metrics present on only one side are ignored (sweep
    membership may legitimately evolve).
    """
    if not 0.0 < threshold < 1.0:
        raise ValidationError("threshold must be in (0, 1)")
    base_pts = baseline.get("points", baseline)
    fresh_pts = fresh.get("points", fresh)
    failures = []
    for label in sorted(set(base_pts) & set(fresh_pts)):
        b = _rate_metrics(base_pts[label].get("result", {}))
        f = _rate_metrics(fresh_pts[label].get("result", {}))
        for metric in sorted(set(b) & set(f)):
            if b[metric] <= 0:
                continue
            drop = 1.0 - f[metric] / b[metric]
            if drop > threshold:
                failures.append(
                    f"{label}.{metric}: {f[metric]:.4g} is "
                    f"{100 * drop:.1f}% below baseline {b[metric]:.4g} "
                    f"(threshold {100 * threshold:.0f}%)"
                )
    return failures


# ---------------------------------------------------------------------------
# Workers: reuse-amortization rate measurements
# ---------------------------------------------------------------------------


@register_worker("engine_rate")
def engine_rate(
    seed: int,
    dims: Tuple[int, int, int] = (5, 5, 6),
    particles_per_cell: int = 64,
    steps: int = 30,
    reuse: bool = False,
    force_impl: Optional[str] = None,
) -> Dict[str, Any]:
    """ReferenceEngine steps/s with or without the persistent CellState.

    The final potential energy ships in the payload so the campaign
    determinism test doubles as a trajectory-equivalence check.
    ``force_impl`` selects the force backend (see
    :mod:`repro.md.backends`); the payload records which backend
    actually produced the number under ``"backend"`` (an unavailable
    optional backend falls back to ``"numpy"``).
    """
    from repro.md.backends import resolve_backend
    from repro.md.dataset import build_dataset
    from repro.md.engine import ReferenceEngine

    system, grid = build_dataset(
        dims, particles_per_cell=particles_per_cell, seed=seed
    )
    eng = ReferenceEngine(
        system=system, grid=grid, reuse_state=reuse, force_impl=force_impl
    )
    eng.run(1)  # prime forces and warm the plan/state caches
    t0 = time.perf_counter()
    eng.run(steps)
    wall = time.perf_counter() - t0
    return {
        "n_particles": int(system.n),
        "steps": steps,
        "reuse": reuse,
        "backend": resolve_backend(force_impl).name,
        "state_builds": eng.state_builds,
        "rebuild_rate": (eng.state_builds / (steps + 2)) if reuse else 1.0,
        "final_potential": float(eng.history[-1].potential),
        "timing": {"steps_per_s": steps / wall},
    }


@register_worker("machine_rate")
def machine_rate(
    seed: int,
    dims: Tuple[int, int, int] = (5, 5, 6),
    fpga_grid: Tuple[int, int, int] = (1, 1, 1),
    particles_per_cell: int = 64,
    steps: int = 30,
    reuse: bool = False,
    traffic: bool = True,
    mode: str = "run",
    force_impl: Optional[str] = None,
) -> Dict[str, Any]:
    """FasdaMachine steps/s with or without step-persistent cell state.

    ``mode="run"`` integrates (migrations can force rebuilds — the
    honest end-to-end number); ``mode="eval"`` re-evaluates forces on a
    frozen configuration (the steady-state amortization ceiling).
    ``force_impl`` selects the force backend; machine results are
    bitwise identical across backends (the float64 recheck through
    ``PairFilter.admit_r2`` stays authoritative), so only the timing
    and the recorded ``"backend"`` differ.
    """
    from repro.core.config import MachineConfig
    from repro.core.machine import FasdaMachine
    from repro.md.backends import resolve_backend
    from repro.md.dataset import build_dataset

    cfg = MachineConfig(dims, fpga_grid)
    system, _ = build_dataset(
        dims, particles_per_cell=particles_per_cell, seed=seed
    )
    machine = FasdaMachine(cfg, system=system)
    machine.reuse_state = reuse
    machine.force_impl = force_impl
    last = machine.compute_forces(collect_traffic=traffic)  # warm-up
    t0 = time.perf_counter()
    if mode == "eval":
        for _ in range(steps):
            last = machine.compute_forces(collect_traffic=traffic)
    elif mode == "run":
        for _ in range(steps):
            machine.step(collect_traffic=traffic)
        last = machine.last_stats
    else:
        raise ValidationError(f"machine_rate mode must be run/eval, got {mode!r}")
    wall = time.perf_counter() - t0
    builds = last.state_builds if last.state_builds is not None else steps
    return {
        "n_particles": int(system.n),
        "steps": steps,
        "reuse": reuse,
        "mode": mode,
        "traffic": traffic,
        "backend": resolve_backend(force_impl).name,
        "state_builds": int(builds) if reuse else steps,
        "rebuild_rate": (int(builds) / (steps + 1)) if reuse else 1.0,
        "potential_energy": float(last.potential_energy),
        "timing": {"steps_per_s": steps / wall},
    }


@register_worker("batch_rate")
def batch_rate(
    seed: int,
    k_systems: int = 8,
    particles_per_cell: int = 4,
    steps: int = 30,
    force_impl: Optional[str] = None,
) -> Dict[str, Any]:
    """Aggregate steps/s of the fused K-system BatchedEngine.

    A small K keeps the default campaign quick; ``repro batch`` runs
    the full K=256 sweep with its serial baseline (see
    :func:`repro.harness.jobs.run_batch_bench`).  The summed final
    potential makes the determinism check double as a per-segment
    trajectory-equivalence check.
    """
    from repro.md.batch import BatchedEngine
    from repro.md.dataset import build_dataset

    engine = BatchedEngine(force_impl=force_impl)
    for i in range(k_systems):
        sysv, grid = build_dataset(
            (3, 3, 3), particles_per_cell=particles_per_cell, seed=seed + i
        )
        engine.add(sysv, grid)
    engine.prime()
    engine.step(2)  # warm past formation
    t0 = time.perf_counter()
    engine.step(steps)
    wall = time.perf_counter() - t0
    pots = engine.potentials()
    return {
        "k_systems": k_systems,
        "n_particles": int(engine.n_particles),
        "steps": steps,
        "backend": engine.backend_name,
        "state_builds": sum(
            engine.state_builds(h) for h in engine.handles()
        ),
        "final_potential_sum": float(sum(pots.values())),
        "timing": {"aggregate_steps_per_s": k_systems * steps / wall},
    }


# ---------------------------------------------------------------------------
# Workers: sweep / ablation design points
# ---------------------------------------------------------------------------


@register_worker("fpga_scaling")
def fpga_scaling_point(
    seed: int,
    global_cells: Tuple[int, int, int] = (4, 4, 4),
    n_fpgas: int = 1,
    margin: float = 0.9,
) -> Dict[str, Any]:
    """One node count of the FPGA-scaling sweep (sweeps.run_fpga_scaling)."""
    from repro.core.cycles import estimate_performance
    from repro.core.machine import FasdaMachine
    from repro.harness.sweeps import best_fitting_config

    cfg = best_fitting_config(tuple(global_cells), n_fpgas, margin=margin)
    if cfg is None:
        return {"n_fpgas": n_fpgas, "fits": False}
    machine = FasdaMachine(cfg, seed=seed)
    perf = estimate_performance(cfg, machine.measure_workload())
    return {
        "n_fpgas": n_fpgas,
        "fits": True,
        "pes_per_spe": cfg.pes_per_spe,
        "spes_per_cbb": cfg.spes_per_cbb,
        "pes_per_cbb": cfg.pes_per_cbb,
        "rate_us_per_day": perf.rate_us_per_day,
    }


@lru_cache(maxsize=4)
def _sensitivity_inputs(seed: int):
    """Workload stats shared by every sensitivity point at this seed.

    Cached per process: the serial path measures once for all nine
    perturbations (matching the historical loop), and each pool child
    measures once for however many points it is handed.  The stats are
    deterministic in the seed, so the cache never changes a result.
    """
    from repro.core.config import MachineConfig, strong_scaling_configs
    from repro.core.machine import FasdaMachine

    cfg_small = MachineConfig((3, 3, 3))
    stats_small = FasdaMachine(cfg_small, seed=seed).measure_workload()
    strong = strong_scaling_configs()
    stats_strong = FasdaMachine(strong["4x4x4-A"], seed=seed).measure_workload()
    return cfg_small, stats_small, strong, stats_strong


@register_worker("sensitivity")
def sensitivity_point(
    seed: int, pf: float = 1.0, pb: float = 1.0
) -> Dict[str, Any]:
    """One perturbation pair of the model-constant sensitivity study."""
    from repro.core.cycles import (
        PE_BUSY_FRACTION,
        PE_FILTER_EFFICIENCY,
        estimate_performance,
    )

    cfg_small, stats_small, strong, stats_strong = _sensitivity_inputs(seed)
    fe = min(1.0, PE_FILTER_EFFICIENCY * pf)
    bf = min(1.0, PE_BUSY_FRACTION * pb)
    rate_small = estimate_performance(
        cfg_small, stats_small, filter_efficiency=fe, busy_fraction=bf
    ).rate_us_per_day
    rate_a = estimate_performance(
        strong["4x4x4-A"], stats_strong, filter_efficiency=fe, busy_fraction=bf
    ).rate_us_per_day
    rate_c = estimate_performance(
        strong["4x4x4-C"], stats_strong, filter_efficiency=fe, busy_fraction=bf
    ).rate_us_per_day
    return {
        "filter_efficiency": fe,
        "busy_fraction": bf,
        "rate_3x3x3_us_per_day": rate_small,
        "strong_gain_c_over_a": rate_c / rate_a,
    }


@lru_cache(maxsize=4)
def _filter_sweep_stats(seed: int):
    """The one workload measurement the whole filter sweep shares."""
    from repro.core.config import MachineConfig
    from repro.core.machine import FasdaMachine

    return FasdaMachine(MachineConfig((3, 3, 3)), seed=seed).measure_workload()


@register_worker("filter_ablation")
def filter_ablation_point(seed: int, filters: int = 6) -> Dict[str, Any]:
    """One filter count of the filters-per-pipeline ablation."""
    from repro.core.config import MachineConfig
    from repro.core.cycles import estimate_performance

    cfg = MachineConfig((3, 3, 3), filters_per_pipeline=filters)
    perf = estimate_performance(cfg, _filter_sweep_stats(seed))
    return {
        "filters": filters,
        "rate_us_per_day": perf.rate_us_per_day,
        "filter_hw_utilization": perf.utilization["filter"].hardware,
        "pe_hw_utilization": perf.utilization["pe"].hardware,
        "bound": perf.bound,
    }


# ---------------------------------------------------------------------------
# The standard campaign and its JSON document
# ---------------------------------------------------------------------------


def build_default_campaign(
    seed: int = 2023,
    steps: int = 30,
    dims: Tuple[int, int, int] = (5, 5, 6),
) -> List[CampaignPoint]:
    """The BENCH_campaign design points.

    Reuse-amortization rates for the reference engine and the simulated
    machine (fresh vs. persistent state, end-to-end and steady-state),
    plus the FPGA-scaling sweep and a slice of the sensitivity study so
    the campaign exercises heterogeneous workers.

    Force-backend points: the six rate points above always run on the
    reference ``"numpy"`` backend (so the committed baseline stays
    comparable across hosts), and one extra engine/machine reuse pair is
    added per *available* backend beyond it (``soa`` always; ``numba``/
    ``cext`` when importable/buildable).  The extra labels are one-sided
    additions, which :func:`check_regression` ignores against baselines
    that predate them.
    """
    from repro.md.backends import available_backends

    pts = [
        point("engine_rate", seed=seed, label="engine/fresh",
              dims=dims, steps=steps, reuse=False),
        point("engine_rate", seed=seed, label="engine/reuse",
              dims=dims, steps=steps, reuse=True),
        point("machine_rate", seed=seed, label="machine/fresh",
              dims=dims, steps=steps, reuse=False, mode="run"),
        point("machine_rate", seed=seed, label="machine/reuse",
              dims=dims, steps=steps, reuse=True, mode="run"),
        point("machine_rate", seed=seed, label="machine/fresh-eval",
              dims=dims, steps=steps, reuse=False, mode="eval"),
        point("machine_rate", seed=seed, label="machine/reuse-eval",
              dims=dims, steps=steps, reuse=True, mode="eval"),
    ]
    for name in available_backends():
        if name == "numpy":
            continue
        pts.append(
            point("engine_rate", seed=seed, label=f"engine/reuse-{name}",
                  dims=dims, steps=steps, reuse=True, force_impl=name)
        )
        pts.append(
            point("machine_rate", seed=seed, label=f"machine/reuse-{name}",
                  dims=dims, steps=steps, reuse=True, mode="run",
                  force_impl=name)
        )
    # Fused many-system stepping (one-sided addition: baselines that
    # predate it are simply not gated on it).
    pts.append(
        point("batch_rate", seed=seed, label="batch/k8", steps=steps)
    )
    for n in (1, 2, 4, 8):
        pts.append(
            point("fpga_scaling", seed=seed, label=f"scaling/{n}-fpga",
                  n_fpgas=n)
        )
    for pf, pb in ((0.9, 1.0), (1.0, 1.0), (1.1, 1.0)):
        pts.append(
            point("sensitivity", seed=seed, label=f"sensitivity/pf={pf}",
                  pf=pf, pb=pb)
        )
    return pts


def run_default_campaign(
    seed: int = 2023,
    steps: int = 30,
    dims: Tuple[int, int, int] = (5, 5, 6),
    compare_serial: bool = True,
    max_workers: Optional[int] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the standard campaign and assemble the BENCH_campaign document.

    Runs the campaign in parallel and (optionally) serially, verifies
    the merged payloads agree exactly, and returns the JSON-able
    document with both wall times and the headline amortization ratios.
    ``journal``/``resume`` are forwarded to :func:`run_campaign`: a
    resumed campaign adopts the journaled completions and produces the
    same points/summary content as an uninterrupted run.
    """
    pts = build_default_campaign(seed=seed, steps=steps, dims=dims)
    par = run_campaign(
        pts, parallel=True, max_workers=max_workers,
        journal=journal, resume=resume,
    )
    doc: Dict[str, Any] = {
        "seed": seed,
        "steps": steps,
        "dims": list(dims),
        "cpu_count": os.cpu_count(),
        "n_points": len(pts),
        "n_resumed": par.n_resumed,
        "parallel_wall_s": par.wall_s,
        "parallel_workers": par.n_workers,
        "points": par.merged(),
    }
    if compare_serial:
        ser = run_campaign(pts, parallel=False)
        if ser.deterministic() != par.deterministic():
            raise ValidationError(
                "campaign determinism violated: serial and parallel "
                "merged payloads differ"
            )
        doc["serial_wall_s"] = ser.wall_s
        doc["parallel_speedup"] = ser.wall_s / max(par.wall_s, 1e-12)
    merged = doc["points"]

    def rate(label):
        return merged[label]["result"]["timing"]["steps_per_s"]

    doc["summary"] = {
        "engine_reuse_speedup": rate("engine/reuse") / rate("engine/fresh"),
        "machine_run_reuse_speedup": (
            rate("machine/reuse") / rate("machine/fresh")
        ),
        "machine_eval_reuse_speedup": (
            rate("machine/reuse-eval") / rate("machine/fresh-eval")
        ),
        "engine_rebuild_rate": merged["engine/reuse"]["result"]["rebuild_rate"],
        "machine_rebuild_rate": merged["machine/reuse"]["result"]["rebuild_rate"],
    }
    backend_speedups: Dict[str, Dict[str, float]] = {}
    for label, payload in merged.items():
        backend = payload["result"].get("backend")
        if backend in (None, "numpy") or not label.endswith(f"-{backend}"):
            continue
        base_label = label[: -len(f"-{backend}")]
        if base_label in merged:
            backend_speedups.setdefault(backend, {})[
                f"{base_label.split('/')[0]}_speedup"
            ] = rate(label) / rate(base_label)
    if backend_speedups:
        doc["summary"]["backend_speedups"] = backend_speedups
    return doc


def write_campaign_json(doc: Dict[str, Any], path: str) -> str:
    """Write a BENCH_campaign document; returns the path."""
    dirname = os.path.dirname(path)
    if dirname:
        os.makedirs(dirname, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_campaign_json(path: str) -> Dict[str, Any]:
    """Load a BENCH_campaign document."""
    with open(path) as fh:
        return json.load(fh)


def format_campaign(doc: Dict[str, Any]) -> str:
    """Human-readable summary table of a BENCH_campaign document."""
    from repro.harness.report import format_table

    rows = []
    for label in sorted(doc["points"]):
        res = doc["points"][label]["result"]
        rates = _rate_metrics(res)
        metric, value = (
            next(iter(sorted(rates.items()))) if rates else ("-", float("nan"))
        )
        extra = ""
        if "rebuild_rate" in res:
            extra = f"rebuilds {100 * res['rebuild_rate']:.0f}%"
        rows.append([label, metric, value, extra])
    table = format_table(
        ["point", "metric", "value", "notes"],
        rows,
        precision=3,
        title=(
            f"Campaign: {doc['n_points']} points, "
            f"parallel {doc['parallel_wall_s']:.2f}s "
            f"on {doc['parallel_workers']} workers (cpu_count="
            f"{doc['cpu_count']})"
        ),
    )
    s = doc.get("summary", {})
    lines = [table]
    if s:
        lines.append(
            "reuse speedups — engine {:.2f}x, machine run {:.2f}x, "
            "machine eval {:.2f}x".format(
                s["engine_reuse_speedup"],
                s["machine_run_reuse_speedup"],
                s["machine_eval_reuse_speedup"],
            )
        )
        lines.append(
            "rebuild rates — engine {:.0%}, machine {:.0%}".format(
                s["engine_rebuild_rate"], s["machine_rebuild_rate"]
            )
        )
    if "serial_wall_s" in doc:
        lines.append(
            "serial {:.2f}s vs parallel {:.2f}s ({:.2f}x)".format(
                doc["serial_wall_s"], doc["parallel_wall_s"],
                doc["parallel_speedup"],
            )
        )
    return "\n".join(lines)

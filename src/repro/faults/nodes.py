"""Node-level failure domains: crashes, restarts, and slowdowns.

PR 3 modelled *message*-level faults (a packet lost in the fabric); this
module models the next failure domain up — a whole FPGA board dying mid
run, the case the paper's day-long drug-discovery campaigns must survive.
A :class:`NodeFaultPlan` declares the crash/slowdown processes (random
with a per-(node, iteration) hazard derived from an MTBF, or explicit
scripted :class:`NodeFaultEvent`\\ s), and a :class:`NodeFaultInjector`
turns the plan into bitwise-reproducible decisions with the same keyed
``SeedSequence`` construction as :class:`~repro.faults.plan.FaultInjector`
— decisions never depend on call order or on how many draws preceded
them.

The recovery protocol itself lives in
:class:`~repro.core.distributed.DistributedMachine`; each completed
recovery is summarized here as a :class:`RecoveryRecord` (what moved,
what was replayed, what it cost).  Recovery is **lossless by
construction**: surviving nodes re-home the dead node's cells and replay
them from the buddy shadow checkpoint through the canonical evaluation
path, so positions/forces/energies stay bitwise identical to a
fault-free run — only the cycle and traffic accounting differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.util.errors import ValidationError

#: Domain-separation salts for the node-level fault streams (disjoint
#: from the message/stall/corrupt salts in :mod:`repro.faults.plan`).
_SALT_CRASH = 0x4E44_4352  # "NDCR"
_SALT_SLOW = 0x4E44_534C   # "NDSL"

#: Cost proxy for replaying one position record for one iteration on the
#: adopting nodes (filter + pipeline + scatter, amortized) — the same
#: order as one PE's per-record work in the cycle model.
REPLAY_CYCLES_PER_RECORD = 64.0

_EVENT_KINDS = ("crash", "slowdown")


@dataclass(frozen=True)
class NodeFaultEvent:
    """One scripted node fault.

    Attributes
    ----------
    node:
        Node id the fault hits.
    iteration:
        Force-pass index at which it fires.
    kind:
        ``"crash"`` (board dies, recovery protocol engages) or
        ``"slowdown"`` (board straggles; work multiplied by ``factor``).
    factor:
        Work multiplier for ``kind="slowdown"`` (ignored for crashes).
    """

    node: int
    iteration: int
    kind: str = "crash"
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValidationError(f"event node must be >= 0, got {self.node}")
        if self.iteration < 0:
            raise ValidationError(
                f"event iteration must be >= 0, got {self.iteration}"
            )
        if self.kind not in _EVENT_KINDS:
            raise ValidationError(
                f"event kind must be one of {_EVENT_KINDS}, got {self.kind!r}"
            )
        if self.factor < 1.0:
            raise ValidationError("slowdown factor must be >= 1")


@dataclass(frozen=True)
class NodeFaultPlan:
    """Declarative description of the node-failure processes.

    Attributes
    ----------
    seed:
        Root seed; two injectors with equal plans make equal decisions.
    crash_rate:
        Per-(node, iteration) crash probability — the discrete hazard of
        an exponential failure law, i.e. ``1 / MTBF`` in iterations (see
        :meth:`from_mtbf`).
    slowdown_rate / slowdown_factor:
        Probability a node straggles on an iteration and the work
        multiplier applied when it does (the node-fault analogue of the
        message plan's stall process).
    restart_iterations:
        Iterations a crashed board stays down before it rejoins (its
        cells live on the adopting survivors for the whole window).
    onset_iteration:
        Random faults only fire from this iteration on; scripted events
        fire at their own iteration regardless.
    events:
        Explicit scripted faults, applied in addition to the random
        processes (the CLI demo's "kill node k at iteration i").
    """

    seed: int = 0
    crash_rate: float = 0.0
    slowdown_rate: float = 0.0
    slowdown_factor: float = 4.0
    restart_iterations: int = 2
    onset_iteration: int = 0
    events: Tuple[NodeFaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in ("crash_rate", "slowdown_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {v}")
        if self.slowdown_factor < 1.0:
            raise ValidationError("slowdown_factor must be >= 1")
        if self.restart_iterations < 1:
            raise ValidationError("restart_iterations must be >= 1")
        if self.onset_iteration < 0:
            raise ValidationError("onset_iteration must be >= 0")
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def from_mtbf(cls, mtbf_iterations: float, **kwargs) -> "NodeFaultPlan":
        """Plan with the crash hazard of a given per-node MTBF.

        ``mtbf_iterations`` is the mean iterations between failures of
        one node; the per-iteration hazard is its reciprocal.
        """
        if not mtbf_iterations >= 1.0:
            raise ValidationError(
                f"mtbf_iterations must be >= 1, got {mtbf_iterations}"
            )
        return cls(crash_rate=1.0 / float(mtbf_iterations), **kwargs)

    @property
    def has_node_faults(self) -> bool:
        """Any crash/slowdown process (random or scripted) active?"""
        return (
            self.crash_rate > 0
            or self.slowdown_rate > 0
            or len(self.events) > 0
        )


class NodeFaultInjector:
    """Applies a :class:`NodeFaultPlan` with bitwise-reproducible draws."""

    def __init__(self, plan: NodeFaultPlan):
        self.plan = plan

    def _rng(self, salt: int, *key: int) -> np.random.Generator:
        entropy = (int(self.plan.seed) & 0xFFFF_FFFF, salt) + tuple(
            int(k) & 0xFFFF_FFFF_FFFF_FFFF for k in key
        )
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def crashes_at(self, iteration: int, n_nodes: int) -> List[int]:
        """Node ids that crash at this iteration (sorted, deduplicated).

        Scripted crash events and the random hazard combine; events
        naming nodes outside ``[0, n_nodes)`` are ignored.
        """
        plan = self.plan
        crashed = {
            e.node
            for e in plan.events
            if e.kind == "crash"
            and e.iteration == iteration
            and 0 <= e.node < n_nodes
        }
        if plan.crash_rate > 0 and iteration >= plan.onset_iteration:
            for node in range(n_nodes):
                rng = self._rng(_SALT_CRASH, node, iteration)
                if rng.random() < plan.crash_rate:
                    crashed.add(node)
        return sorted(crashed)

    def work_multiplier(self, node: int, iteration: int) -> float:
        """Slowdown factor for a node's work this iteration (>= 1)."""
        plan = self.plan
        factor = 1.0
        for e in plan.events:
            if (
                e.kind == "slowdown"
                and e.node == node
                and e.iteration == iteration
            ):
                factor = max(factor, e.factor)
        if plan.slowdown_rate > 0 and iteration >= plan.onset_iteration:
            rng = self._rng(_SALT_SLOW, node, iteration)
            if rng.random() < plan.slowdown_rate:
                factor = max(factor, plan.slowdown_factor)
        return factor


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed node-crash recovery.

    Attributes
    ----------
    node:
        The node that crashed.
    crash_iteration / detected_iteration:
        Force-pass index of the crash and of its detection by the
        surviving peers' watchdogs (equal in the synchronous model: the
        chained handshake stalls within the same iteration).
    buddy:
        Surviving node holding the crashed node's shadow checkpoint
        (ring buddy, skipping other down nodes).
    shadow_iteration:
        Iteration of the shadow the replay started from.
    replay_iterations:
        Iterations replayed to catch the adopted cells up
        (``detected_iteration - shadow_iteration``).
    cells_moved / records_moved:
        The dead node's cells re-homed onto survivors and the position
        records they held at re-homing time.
    migration_cross_node:
        Cross-node migrations the re-homing cost per the MU-ring
        accounting (every adopted record crosses a node boundary).
    recovery_traffic_records:
        Extra fabric records: shadow restore from the buddy plus the
        return migration when the node rejoins.
    cycles_lost:
        Watchdog detection timeout plus the replay work, in cycles.
    """

    node: int
    crash_iteration: int
    detected_iteration: int
    buddy: int
    shadow_iteration: int
    replay_iterations: int
    cells_moved: int
    records_moved: int
    migration_cross_node: int
    recovery_traffic_records: int
    cycles_lost: float


@dataclass(frozen=True)
class RescaleRecord:
    """One committed elastic rescale (planned grow or shrink).

    The planned counterpart of :class:`RecoveryRecord`: a rescale moves
    cells because the host *decided* to, not because a board died, so
    its migration is fully accounted through the switch model instead
    of being charged as crash-recovery traffic.

    Attributes
    ----------
    iteration:
        Force-pass index at which the rescale committed (an iteration
        boundary — physics state is never in flight during a rescale).
    n_old / n_new:
        Node counts before and after.
    grid_old / grid_new:
        The FPGA grids before and after.
    cells_moved:
        Cells whose owning node changed under the new partition
        (including empty cells — ownership moves even when no records
        do).
    records_moved:
        Position records those cells held at the boundary; every one
        crosses a node boundary by definition.
    flows:
        Per-(old owner, new owner) migration flows as
        ``(src, dst, records, packets)`` tuples, ascending by (src,
        dst) — the unit the conservation tests check
        (``packets == ceil(records / records_per_packet)`` per flow).
    migration_packets / migration_bytes:
        Total packets and wire bytes of the transfer.
    migration_cycles:
        Cooldown-paced serialization makespan of the transfer (the
        longest single flow's paced train; flows pace concurrently).
    shadow_records:
        Records captured in the prepare-phase shadow checkpoint the
        transfer could have rolled back to.
    """

    iteration: int
    n_old: int
    n_new: int
    grid_old: Tuple[int, int, int]
    grid_new: Tuple[int, int, int]
    cells_moved: int
    records_moved: int
    flows: Tuple[Tuple[int, int, int, int], ...]
    migration_packets: int
    migration_bytes: int
    migration_cycles: float
    shadow_records: int


@dataclass(frozen=True)
class RescaleAbortedRecord:
    """One rescale attempt rolled back by a mid-migration fault.

    Attributes
    ----------
    iteration:
        Force-pass index of the attempt.
    n_old / n_new:
        Node counts of the pre-rescale partition and the abandoned
        target.
    reason:
        What killed the transfer (node crash, lost/corrupt migration
        flow, switch overflow, or a prepare-phase precondition).
    phase:
        ``"prepare"`` (preconditions failed before any transfer) or
        ``"transfer"`` (the migration itself faulted).
    flows_attempted:
        Migration flows planned before the abort.
    packets_lost:
        Migration packets lost beyond the retry budget (0 for crashes
        and prepare-phase aborts).
    rolled_back:
        Always True on the normal path — recorded explicitly so the
        soak can assert no abort ever left a half-migrated machine.
    """

    iteration: int
    n_old: int
    n_new: int
    reason: str
    phase: str
    flows_attempted: int
    packets_lost: int
    rolled_back: bool

"""Graceful-degradation bookkeeping for the distributed machine.

When a halo cell's position records are lost (or arrive corrupted) and
the transport cannot recover them within its retry budget, the receiving
node can keep the iteration alive by reusing the *last successfully
received* snapshot of that cell — stale by one or more iterations.  Each
such substitution is recorded as a :class:`DegradationRecord` so the
harness can report how often the cluster degraded and how large the
resulting force error can be.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DegradationRecord:
    """One stale-halo substitution event.

    Attributes
    ----------
    iteration:
        Force-pass index at which the substitution happened.
    src, dst:
        The flow whose packets were lost (sender and receiving node).
    cell:
        Global cell id whose records were replaced.
    lost_records:
        Position records of this cell lost beyond recovery this pass.
    stale_records:
        Records substituted from the stale snapshot.
    age:
        Iterations since the snapshot was captured (>= 1).
    max_displacement:
        First-order bound on how far any substituted particle may have
        moved since the snapshot: ``age * dt * max|v|`` (angstrom).
    force_error_bound:
        Per-interaction force-error bound (kcal/mol/A): the displacement
        bound times the force kernel's Lipschitz constant over the
        admitted range.
    """

    iteration: int
    src: int
    dst: int
    cell: int
    lost_records: int
    stale_records: int
    age: int
    max_displacement: float
    force_error_bound: float

"""Reliable-transport model layered over the lossy fabric.

The paper ships raw UDP and relies on cooldown pacing to keep the switch
lossless (Sec. 5.4).  This module models the alternative a production
cluster needs: per-flow sequence numbers, receiver ACKs, and sender
retransmit timers with exponential backoff and a bounded retry budget —
together with *cycle accounting*, so the harness can report what
reliability costs relative to the bare-UDP operating point.

The model is flow-level, not event-level: :func:`send_flow` resolves the
fate of every packet of one (src, dst, channel, iteration) flow in
rounds.  Round 0 is the original transmission; each later round
retransmits exactly the unacknowledged packets after a timeout that
doubles per round.  Packet loss, corruption (detected by the packet
checksum and treated as loss), and ACK loss (which causes a spurious
retransmission of an already-delivered packet) all come from the shared
:class:`~repro.faults.plan.FaultInjector`, keyed by attempt number, so
the whole exchange is bitwise reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.faults.plan import FaultInjector
from repro.util.errors import ValidationError

#: Channel suffix carrying acknowledgements (its loss process is keyed
#: independently of the data channel's).
ACK_SUFFIX = "/ack"


@dataclass(frozen=True)
class TransportConfig:
    """Parameters of the reliability layer.

    Attributes
    ----------
    retry_budget:
        Maximum retransmission rounds per packet (0 = send once, never
        retry — still detects loss, unlike bare UDP which is oblivious).
    timeout_cycles:
        Initial retransmit timer.  At 200 MHz and ~1 us switch RTT the
        paper-scale figure is a few hundred cycles; the default is
        deliberately conservative (2x a 200-cycle one-way latency).
    backoff:
        Multiplier applied to the timer each round (exponential backoff).
    packet_cycles:
        Serialization cost of putting one packet back on the wire.
    model_acks:
        Expose ACKs to the same loss process as data (a lost ACK causes
        a spurious retransmission that the receiver discards as a
        duplicate).
    """

    retry_budget: int = 3
    timeout_cycles: float = 400.0
    backoff: float = 2.0
    packet_cycles: float = 1.0
    model_acks: bool = True

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValidationError("retry_budget must be >= 0")
        if self.timeout_cycles < 0 or self.packet_cycles < 0:
            raise ValidationError("cycle costs must be >= 0")
        if self.backoff < 1.0:
            raise ValidationError("backoff must be >= 1")


@dataclass
class TransportStats:
    """Accumulated reliability-layer accounting (mergeable with ``+``).

    ``overhead_cycles`` is the cost *beyond* the fault-free one-shot
    send: timeout waits plus retransmitted-packet serialization.  The
    fault-free baseline therefore reports exactly zero overhead.
    """

    packets_sent: int = 0
    retransmits: int = 0
    acks_sent: int = 0
    ack_drops: int = 0
    duplicates: int = 0
    corrupt_detected: int = 0
    delivered: int = 0
    lost: int = 0
    rounds: int = 0
    overhead_cycles: float = 0.0

    def __add__(self, other: "TransportStats") -> "TransportStats":
        if not isinstance(other, TransportStats):
            return NotImplemented
        return TransportStats(
            packets_sent=self.packets_sent + other.packets_sent,
            retransmits=self.retransmits + other.retransmits,
            acks_sent=self.acks_sent + other.acks_sent,
            ack_drops=self.ack_drops + other.ack_drops,
            duplicates=self.duplicates + other.duplicates,
            corrupt_detected=self.corrupt_detected + other.corrupt_detected,
            delivered=self.delivered + other.delivered,
            lost=self.lost + other.lost,
            rounds=max(self.rounds, other.rounds),
            overhead_cycles=self.overhead_cycles + other.overhead_cycles,
        )

    def __radd__(self, other):
        # Support sum(stats_list) starting from 0.
        if other == 0:
            return self
        return self.__add__(other)

    @property
    def delivery_rate(self) -> float:
        total = self.delivered + self.lost
        return self.delivered / total if total else 1.0

    @property
    def overhead_per_packet(self) -> float:
        """Mean extra cycles per originally-sent packet."""
        original = self.packets_sent - self.retransmits
        return self.overhead_cycles / original if original else 0.0


def send_flow(
    injector: Optional[FaultInjector],
    src: int,
    dst: int,
    channel: str,
    iteration: int,
    n_packets: int,
    config: Optional[TransportConfig] = None,
) -> Tuple[np.ndarray, TransportStats]:
    """Resolve one flow's packets through the (possibly lossy) fabric.

    Parameters
    ----------
    injector:
        Fault source; ``None`` means a lossless fabric.
    config:
        Reliability layer; ``None`` models the paper's bare UDP — one
        transmission, no ACKs, no retries.

    Returns
    -------
    (delivered, stats):
        ``delivered`` is a boolean mask over the flow's packet indices;
        ``stats`` the accounting for this flow (overhead is zero when
        nothing went wrong).
    """
    if n_packets < 0:
        raise ValidationError("n_packets must be >= 0")
    stats = TransportStats()
    delivered = np.ones(n_packets, dtype=bool)
    if n_packets == 0:
        return delivered, stats
    if injector is None:
        stats.packets_sent = n_packets
        stats.delivered = n_packets
        if config is not None and config.model_acks:
            stats.acks_sent = n_packets
        return delivered, stats

    if config is None:
        # Bare UDP: one shot; corruption is caught by the packet checksum
        # at the NIC and discarded, so it manifests as loss.
        drop, corrupt = injector.drop_corrupt_arrays(
            src, dst, channel, iteration, n_packets, attempt=0
        )
        delivered = ~(drop | corrupt)
        stats.packets_sent = n_packets
        stats.corrupt_detected = int(np.count_nonzero(corrupt & ~drop))
        stats.delivered = int(np.count_nonzero(delivered))
        stats.lost = n_packets - stats.delivered
        stats.rounds = 1
        return delivered, stats

    delivered = np.zeros(n_packets, dtype=bool)
    unacked = np.ones(n_packets, dtype=bool)
    for attempt in range(config.retry_budget + 1):
        n_send = int(np.count_nonzero(unacked))
        if n_send == 0:
            break
        stats.rounds = attempt + 1
        stats.packets_sent += n_send
        if attempt > 0:
            stats.retransmits += n_send
            stats.overhead_cycles += (
                config.timeout_cycles * config.backoff ** (attempt - 1)
                + n_send * config.packet_cycles
            )
        drop, corrupt = injector.drop_corrupt_arrays(
            src, dst, channel, iteration, n_packets, attempt=attempt
        )
        fail = (drop | corrupt) & unacked
        stats.corrupt_detected += int(np.count_nonzero(corrupt & ~drop & unacked))
        arrived = unacked & ~fail
        stats.duplicates += int(np.count_nonzero(arrived & delivered))
        delivered |= arrived
        stats.acks_sent += int(np.count_nonzero(arrived))
        if config.model_acks:
            ack_drop, _ = injector.drop_corrupt_arrays(
                src, dst, channel + ACK_SUFFIX, iteration, n_packets,
                attempt=attempt,
            )
            ack_lost = arrived & ack_drop
            stats.ack_drops += int(np.count_nonzero(ack_lost))
        else:
            ack_lost = np.zeros(n_packets, dtype=bool)
        unacked = fail | ack_lost
    stats.delivered = int(np.count_nonzero(delivered))
    stats.lost = n_packets - stats.delivered
    return delivered, stats

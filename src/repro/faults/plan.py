"""Deterministic, seedable fault plans and the injector that applies them.

The paper's cluster keeps its raw-UDP transport lossless only by pacing
transmissions (Sec. 5.4); this module models what happens when that
assumption breaks.  A :class:`FaultPlan` declares the fault processes —
packet drop, duplication, reordering delay, payload bit-flip corruption,
and node stall/straggler faults — and a :class:`FaultInjector` turns the
plan into *bitwise reproducible* decisions: every decision is drawn from
a fresh ``numpy.random.default_rng`` seeded from the plan seed plus the
event key ``(src, dst, channel, iteration, unit, attempt)``, so a run
never depends on call order, thread scheduling, or how many other
decisions were drawn before it.

``channel`` is a string ("position", "force", "last_position", ...) and
is folded into the seed via CRC-32, which is stable across processes —
unlike Python's randomized ``hash``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Tuple

import numpy as np

from repro.util.errors import ValidationError

#: Domain-separation salts so the message, stall, and corruption streams
#: never alias even for identical keys.
_SALT_MESSAGE = 0x4D53_4721
_SALT_STALL = 0x5354_414C
_SALT_CORRUPT = 0x434F_5252


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one packet/message (one attempt).

    Attributes
    ----------
    drop:
        Lose the packet in the fabric.
    duplicates:
        Extra copies delivered after the original (0 = none).
    delay:
        Extra in-fabric latency (cycles) modelling reordering — the
        packet arrives late relative to later sends.
    corrupt:
        Flip a payload bit in flight.  A reliable transport detects this
        via its checksum and treats the packet as lost; a bare receiver
        sees the corrupted payload.
    """

    drop: bool = False
    duplicates: int = 0
    delay: float = 0.0
    corrupt: bool = False

    @property
    def clean(self) -> bool:
        return not (self.drop or self.duplicates or self.delay or self.corrupt)


#: Shared no-fault verdict (fast path for zero-rate plans).
CLEAN = FaultDecision()


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the fault processes to inject.

    All rates are per-packet (or per-message) probabilities in [0, 1];
    the stall rate is per (node, iteration).  A default-constructed plan
    injects nothing.

    Attributes
    ----------
    seed:
        Root seed; two injectors with equal plans make equal decisions.
    drop_rate:
        Probability a packet is lost in the fabric.
    duplicate_rate:
        Probability a packet is delivered twice.
    delay_rate / delay_cycles:
        Probability a packet is delayed (reordered), and the mean of the
        exponential extra latency applied when it is.
    corrupt_rate:
        Probability of a payload bit-flip in flight.
    stall_rate / stall_factor:
        Probability a node straggles on an iteration, and the work
        multiplier applied when it does.
    onset_iteration:
        Faults only fire from this iteration on — e.g. ``1`` keeps the
        first exchange clean so receivers have a stale snapshot to
        degrade onto when later losses exceed the retry budget.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_cycles: float = 1000.0
    corrupt_rate: float = 0.0
    stall_rate: float = 0.0
    stall_factor: float = 4.0
    onset_iteration: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate",
                     "corrupt_rate", "stall_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {v}")
        if self.delay_cycles < 0:
            raise ValidationError("delay_cycles must be >= 0")
        if self.stall_factor < 1.0:
            raise ValidationError("stall_factor must be >= 1")
        if self.onset_iteration < 0:
            raise ValidationError("onset_iteration must be >= 0")

    @property
    def has_message_faults(self) -> bool:
        """Any in-fabric fault process active?"""
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.delay_rate > 0
            or self.corrupt_rate > 0
        )

    @property
    def has_stall_faults(self) -> bool:
        return self.stall_rate > 0


def _channel_id(channel: str) -> int:
    """Stable 32-bit integer for a channel name."""
    return zlib.crc32(channel.encode("utf-8"))


class FaultInjector:
    """Applies a :class:`FaultPlan` with bitwise-reproducible decisions.

    One injector instance can be shared by every layer (event network,
    packet switch, distributed exchange): decisions depend only on the
    plan and the event key, never on injector state.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    # -- keyed RNG ----------------------------------------------------------

    def _rng(self, salt: int, *key: int) -> np.random.Generator:
        entropy = (int(self.plan.seed) & 0xFFFF_FFFF, salt) + tuple(
            int(k) & 0xFFFF_FFFF_FFFF_FFFF for k in key
        )
        return np.random.default_rng(np.random.SeedSequence(entropy))

    # -- per-message decisions ---------------------------------------------

    def decide(
        self,
        src: int,
        dst: int,
        channel: str,
        iteration: int,
        unit: int = 0,
        attempt: int = 0,
    ) -> FaultDecision:
        """Verdict for one packet/message.

        ``unit`` distinguishes packets within the same
        (src, dst, channel, iteration) flow; ``attempt`` distinguishes
        retransmissions of the same unit, so a retransmitted packet is
        re-exposed to an independent loss draw.
        """
        plan = self.plan
        if not plan.has_message_faults or iteration < plan.onset_iteration:
            return CLEAN
        rng = self._rng(
            _SALT_MESSAGE, src, dst, _channel_id(channel), iteration, unit, attempt
        )
        u = rng.random(4)
        drop = bool(u[0] < plan.drop_rate)
        duplicates = int(u[1] < plan.duplicate_rate)
        delay = 0.0
        if u[2] < plan.delay_rate:
            # Inverse-CDF exponential from a dedicated draw: deterministic
            # and independent of the boolean draws above.
            delay = float(-np.log(1.0 - rng.random()) * plan.delay_cycles)
        corrupt = bool(u[3] < plan.corrupt_rate)
        if not (drop or duplicates or delay or corrupt):
            return CLEAN
        return FaultDecision(drop, duplicates, delay, corrupt)

    def decide_message(self, msg: Any, iteration: int, unit: int = 0,
                       attempt: int = 0) -> FaultDecision:
        """Verdict for an event-layer :class:`~repro.eventsim.Message`.

        The default implementation keys off the message's envelope
        (src, dst, kind); subclasses may inspect the full message (see
        :class:`PredicateInjector`).
        """
        return self.decide(msg.src, msg.dst, msg.kind, iteration, unit, attempt)

    def drop_corrupt_arrays(
        self,
        src: int,
        dst: int,
        channel: str,
        iteration: int,
        n: int,
        attempt: int = 0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized per-packet (drop, corrupt) masks for a whole flow.

        Equivalent to ``n`` :meth:`decide` calls with ``unit=0..n-1``
        collapsed into one keyed draw — the batched distributed exchange
        and the packet switch use this so fault decisions stay O(1) RNG
        setups per flow instead of per packet.
        """
        plan = self.plan
        if (
            n <= 0
            or not (plan.drop_rate > 0 or plan.corrupt_rate > 0)
            or iteration < plan.onset_iteration
        ):
            z = np.zeros(max(n, 0), dtype=bool)
            return z, z.copy()
        rng = self._rng(
            _SALT_MESSAGE, src, dst, _channel_id(channel), iteration, attempt
        )
        u = rng.random((n, 2))
        return u[:, 0] < plan.drop_rate, u[:, 1] < plan.corrupt_rate

    # -- payload corruption -------------------------------------------------

    def corrupt_payload(
        self, payload: Any, src: int, dst: int, channel: str, iteration: int
    ) -> Any:
        """Bit-flip a payload in flight (bare-transport corruption).

        Integer payloads get one of their low 16 bits flipped; anything
        else is replaced by a ``("corrupt", original)`` marker — the
        receiver either mis-interprets it or its validation trips, both
        of which are realistic outcomes of an undetected flip.
        """
        rng = self._rng(
            _SALT_CORRUPT, src, dst, _channel_id(channel), iteration
        )
        if isinstance(payload, (int, np.integer)):
            return int(payload) ^ (1 << int(rng.integers(0, 16)))
        return ("corrupt", payload)

    # -- node stall faults --------------------------------------------------

    def work_multiplier(self, node: int, iteration: int) -> float:
        """Stall factor for a node's force-phase work this iteration."""
        plan = self.plan
        if not plan.has_stall_faults or iteration < plan.onset_iteration:
            return 1.0
        rng = self._rng(_SALT_STALL, node, iteration)
        return plan.stall_factor if rng.random() < plan.stall_rate else 1.0


class PredicateInjector(FaultInjector):
    """Adapter for the legacy ``drop_message_fn`` hook of the sync layer.

    Wraps a ``Message -> bool`` predicate: messages for which it returns
    True are dropped, nothing else is injected.  Exists so the old
    keyword keeps working as a deprecated shim.
    """

    _DROP = FaultDecision(drop=True)

    def __init__(self, predicate: Callable[[Any], bool]):
        super().__init__(FaultPlan())
        self.predicate = predicate

    def decide_message(self, msg: Any, iteration: int, unit: int = 0,
                       attempt: int = 0) -> FaultDecision:
        return self._DROP if self.predicate(msg) else CLEAN


class ChannelInjector(FaultInjector):
    """Restrict a plan's message faults to one channel family.

    Packets whose channel equals ``channel`` (or a derived subchannel
    such as ``"<channel>/ack"``) see the wrapped plan's fault
    processes; every other flow sees a clean fabric.  The elasticity
    soak uses this to fault migration traffic in flight while the
    position exchange stays bitwise comparable to a fault-free run.
    Node-stall draws are not channel-scoped and pass through unchanged.
    """

    def __init__(self, plan: FaultPlan, channel: str):
        super().__init__(plan)
        self.channel = str(channel)

    def _covers(self, channel: str) -> bool:
        return channel == self.channel or channel.startswith(
            self.channel + "/"
        )

    def decide(
        self,
        src: int,
        dst: int,
        channel: str,
        iteration: int,
        unit: int = 0,
        attempt: int = 0,
    ) -> FaultDecision:
        if not self._covers(channel):
            return CLEAN
        return super().decide(src, dst, channel, iteration, unit, attempt)

    def drop_corrupt_arrays(
        self,
        src: int,
        dst: int,
        channel: str,
        iteration: int,
        n: int,
        attempt: int = 0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not self._covers(channel):
            z = np.zeros(max(n, 0), dtype=bool)
            return z, z.copy()
        return super().drop_corrupt_arrays(
            src, dst, channel, iteration, n, attempt
        )

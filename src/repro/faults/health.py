"""Numerical health guards and poisoned-job records for batched stepping.

PR 7 packed K independent tenants into one shared SoA row space; this
module bounds the blast radius of any single ill-conditioned tenant
(overlapping atoms, corrupt upload, too-large dt).  The design follows
the same discipline as the rest of the fault layer:

* **Guards are read-only.**  Every check compares values the step
  already produced (the drift displacement buffer, the fresh force
  columns, the per-segment energy vector) against thresholds; no state
  array is ever written, so a guarded trajectory is bitwise identical
  to an unguarded one — the same contract ``CellState`` reuse makes
  with the rebuild-every-step path.
* **Attribution is segment-wise.**  A global O(N) screen (three column
  sums, one ``isfinite``) runs every step; only when it trips does the
  per-segment ``reduceat`` attribution run, exactly the shape
  :meth:`~repro.md.batch.BatchedEngine._rebuild_mask` already uses.
  Healthy-path overhead stays in the low single percent (measured in
  ``bench_hotpath`` — see DESIGN.md §12).
* **Chaos is keyed-RNG.**  :class:`JobChaosPlan` derives every
  poison decision from ``SeedSequence((seed, salt, job_index))`` like
  :class:`~repro.faults.plan.FaultInjector`, so a chaos soak replays
  bit-for-bit from its seed with no injector state to persist.

The typed error lives in :mod:`repro.util.errors`
(:class:`~repro.util.errors.JobPoisonedError`); the quarantine
machinery itself is :meth:`repro.md.batch.BatchedEngine` swap-out plus
the scheduler in :mod:`repro.harness.jobs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.util.errors import JobPoisonedError, ValidationError

#: Poison reasons a guard can record (stable strings — they go into
#: journals and CI artifacts).
REASON_INPUT = "nonfinite_input"
REASON_DISPLACEMENT = "max_displacement"
REASON_FORCE = "nonfinite_force"
REASON_ENERGY = "nonfinite_energy"
REASON_DRIFT = "energy_drift"

#: Keyed-RNG domain separation salt for chaos poison decisions
#: (ASCII "POIS", mirroring the transport injector's salts).
_SALT_POISON = 0x504F_4953


@dataclass(frozen=True)
class GuardConfig:
    """Health-guard policy for one :class:`~repro.md.batch.BatchedEngine`.

    Parameters
    ----------
    max_step_displacement:
        Trip when any particle moves further than this (angstrom) in a
        single drift.  ``None`` defaults to ``0.25 * cell_edge`` at
        engine attach time — two orders of magnitude above a thermal
        2 fs step, far below anything that could corrupt binning.
        The same check catches non-finite positions: a NaN/Inf
        displacement never compares ``<=`` the threshold.
    energy_drift_tol:
        Optional watchdog: trip a *thermostat-free* segment whose total
        energy (kinetic + potential) drifted more than this fraction of
        its reference magnitude since priming.  ``None`` (default)
        disables the watchdog — it is the one guard that costs an extra
        per-row multiply, and thermostatted segments exchange energy by
        design so they are always exempt.
    check_input:
        Screen systems at admission: non-finite positions or velocities
        raise :class:`~repro.util.errors.JobPoisonedError` before the
        system ever touches the shared arrays.
    """

    max_step_displacement: Optional[float] = None
    energy_drift_tol: Optional[float] = None
    check_input: bool = True

    def resolved_max_disp(self, cell_edge: float) -> float:
        if self.max_step_displacement is not None:
            if self.max_step_displacement <= 0:
                raise ValidationError(
                    "max_step_displacement must be positive"
                )
            return float(self.max_step_displacement)
        return 0.25 * float(cell_edge)


@dataclass
class PoisonRecord:
    """One guard trip: which segment, when, why, and how badly.

    ``value``/``threshold`` hold the offending magnitude and the limit
    it crossed (squared-displacement trips are reported in angstrom,
    not angstrom²).  ``segment_steps`` is the number of steps the
    segment had completed when the trip was detected — the scheduler
    uses it for retry accounting.  ``system`` optionally carries the
    extracted (poisoned) final state for forensics; it never enters a
    journal.
    """

    handle: int
    step: int
    reason: str
    value: float
    threshold: float
    segment_steps: int = 0
    system: Optional[object] = None

    def asdict(self) -> Dict[str, Any]:
        """JSON-safe form (drops the forensic state array payload)."""
        return {
            "handle": int(self.handle),
            "step": int(self.step),
            "reason": self.reason,
            "value": float(self.value),
            "threshold": float(self.threshold),
            "segment_steps": int(self.segment_steps),
        }


def check_system_finite(positions: np.ndarray, velocities: np.ndarray,
                        handle: int = -1) -> None:
    """Admission screen: raise :class:`JobPoisonedError` on NaN/Inf state.

    One-time O(N) cost per admission, never on the step path.
    """
    for name, arr in (("positions", positions), ("velocities", velocities)):
        if not np.isfinite(arr).all():
            bad = int(np.count_nonzero(~np.isfinite(arr)))
            record = PoisonRecord(
                handle=handle, step=0, reason=REASON_INPUT,
                value=float(bad), threshold=0.0,
            )
            raise JobPoisonedError(
                f"input system carries {bad} non-finite {name} "
                "component(s); refusing admission to the shared batch",
                record=record,
            )


# ---------------------------------------------------------------------------
# Deterministic chaos: seeded poison injection for soak tests
# ---------------------------------------------------------------------------

#: Poison modes the chaos plan can inject, and what they exercise:
#: ``nan_velocity`` is caught by the admission screen, ``kick`` by the
#: max-displacement tripwire on the first chunk, ``overlap`` by the
#: finite-force/energy guard once the pair explodes.
CHAOS_MODES = ("nan_velocity", "kick", "overlap")


@dataclass(frozen=True)
class JobChaosPlan:
    """Keyed-RNG selection of which jobs to poison, and how.

    Every decision is a pure function of ``(seed, job_index)`` —
    re-running a soak with the same seed poisons the same jobs the same
    way, which is what lets the CI chaos leg assert exact quarantine
    counts and bitwise survivor parity.
    """

    seed: int = 0
    poison_rate: float = 0.0
    modes: Tuple[str, ...] = CHAOS_MODES

    def __post_init__(self):
        if not 0.0 <= self.poison_rate <= 1.0:
            raise ValidationError("poison_rate must be in [0, 1]")
        for m in self.modes:
            if m not in CHAOS_MODES:
                raise ValidationError(f"unknown chaos mode {m!r}")

    def _rng(self, job_index: int) -> np.random.Generator:
        entropy = (
            int(self.seed) & 0xFFFF_FFFF,
            _SALT_POISON,
            int(job_index) & 0xFFFF_FFFF_FFFF_FFFF,
        )
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def decide(self, job_index: int) -> Optional[str]:
        """The poison mode for this job, or ``None`` (healthy)."""
        rng = self._rng(job_index)
        if rng.random() >= self.poison_rate:
            return None
        return self.modes[int(rng.integers(len(self.modes)))]

    def poison(self, system, job_index: int):
        """Return a poisoned *copy* of ``system`` per :meth:`decide`.

        Returns the untouched original when the decision is healthy.
        """
        mode = self.decide(job_index)
        if mode is None:
            return system
        rng = self._rng(job_index)
        rng.random()            # burn the decision draws so the
        rng.integers(1)         # corruption site is independent
        out = system.copy()
        j = int(rng.integers(out.n))
        if mode == "nan_velocity":
            out.velocities[j, 0] = np.nan
        elif mode == "kick":
            # Huge but finite: sails past any admission screen, trips
            # the displacement guard on the first drift.
            out.velocities[j] = 1.0e6
        elif mode == "overlap":
            # Two near-coincident atoms: r^-12 explodes into Inf force
            # and energy within the first force pass.
            k = int(rng.integers(out.n - 1))
            k = k if k < j else k + 1
            out.positions[k] = out.positions[j] + 1.0e-7
        return out


__all__ = [
    "CHAOS_MODES",
    "GuardConfig",
    "JobChaosPlan",
    "PoisonRecord",
    "REASON_DISPLACEMENT",
    "REASON_DRIFT",
    "REASON_ENERGY",
    "REASON_FORCE",
    "REASON_INPUT",
    "check_system_finite",
]

"""Fault injection and resilience modelling for the FASDA cluster.

See :mod:`repro.faults.plan` for the deterministic injector and
:mod:`repro.faults.transport` for the reliable-transport model the
harness weighs against the paper's bare-UDP + cooldown operating point.
"""

from repro.faults.degradation import DegradationRecord
from repro.faults.health import (
    GuardConfig,
    JobChaosPlan,
    PoisonRecord,
    check_system_finite,
)
from repro.faults.nodes import (
    NodeFaultEvent,
    NodeFaultInjector,
    NodeFaultPlan,
    RecoveryRecord,
    RescaleAbortedRecord,
    RescaleRecord,
)
from repro.faults.plan import (
    CLEAN,
    ChannelInjector,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    PredicateInjector,
)
from repro.faults.transport import (
    ACK_SUFFIX,
    TransportConfig,
    TransportStats,
    send_flow,
)

__all__ = [
    "ACK_SUFFIX",
    "CLEAN",
    "ChannelInjector",
    "DegradationRecord",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "GuardConfig",
    "JobChaosPlan",
    "PoisonRecord",
    "check_system_finite",
    "NodeFaultEvent",
    "NodeFaultInjector",
    "NodeFaultPlan",
    "PredicateInjector",
    "RecoveryRecord",
    "RescaleAbortedRecord",
    "RescaleRecord",
    "TransportConfig",
    "TransportStats",
    "send_flow",
]
